// Webfarm: the Océano scenario that motivated GulfStream.
//
// A hosting farm serves two customers (domains) on shared hardware, with
// live user traffic routed by a balancer that learns the topology only
// from GulfStream Central's notifications. The demo runs the paper's
// §3.1 contrast end to end:
//
//  1. Customer "acme" takes a load spike, so Central reallocates servers
//     from "globex" — including a front-end carrying live sessions — by
//     rewriting switch-port VLANs over SNMP. Central expects the move:
//     it announces the drain (MoveStarted), suppresses the departure
//     notifications, and updates the configuration database. Users see
//     (almost) nothing: error-seconds stay at zero.
//  2. An operator then moves another front-end the bad way — rewiring
//     the switch ports behind GulfStream's back. The balancer keeps
//     routing to a server that is gone until failure detection and move
//     correlation catch up, and users eat the difference as
//     error-seconds. Verification flags the database mismatch.
//
// Run with:
//
//	go run ./examples/webfarm
package main

import (
	"fmt"
	"log"
	"time"

	gulfstream "repro"
)

func main() {
	f, err := gulfstream.NewFarm(gulfstream.Spec{
		Seed:       7,
		AdminNodes: 2,
		Domains: []gulfstream.DomainSpec{
			{Name: "acme", FrontEnds: 2, BackEnds: 2},
			{Name: "globex", FrontEnds: 3, BackEnds: 4},
		},
		StartSkew:    2 * time.Second,
		RecordEvents: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	f.Bus.Subscribe(func(e gulfstream.Event) {
		switch e.Kind {
		case gulfstream.MoveStarted, gulfstream.NodeMoved, gulfstream.AdapterFailed,
			gulfstream.VerifyMismatch, gulfstream.AdapterDisabled:
			fmt.Printf("  event %v\n", e)
		}
	})

	fmt.Println("== farm boots: 2 customers, shared substrate ==")
	f.Start()
	if _, ok := f.RunUntilStable(2 * time.Minute); !ok {
		log.Fatal("farm never stabilized")
	}
	central := f.ActiveCentral()
	printAllocation(f)

	// Live traffic: a serving plane routed purely off Central's
	// notifications (direct tap — the balancer runs next to Central).
	plane := f.AttachServe(gulfstream.ServeConfig{Seed: 7}, nil)
	plane.Start()
	f.RunFor(10 * time.Second) // sessions build up
	plane.Workload.ResetStats()
	fmt.Println("\nserving plane attached: user sessions flowing against both domains")

	// ---- Phase 1: the move done right (with expectation) ----
	movers := []string{"globex-fe-01", "globex-be-00"}
	fmt.Printf("\n== t=%v: acme load spike — Central reallocates %v ==\n", f.Sched.Now(), movers)
	pending := len(movers)
	for _, node := range movers {
		node := node
		if err := f.MoveNodeToDomain(node, "acme", func(err error) {
			if err != nil {
				log.Fatalf("move %s: %v", node, err)
			}
			pending--
			fmt.Printf("  SNMP reconfiguration for %s complete at t=%v\n", node, f.Sched.Now())
		}); err != nil {
			log.Fatal(err)
		}
	}
	// Let the moved adapters orphan out of their old AMGs and join the
	// new segment's groups; Central correlates the leave/join pairs.
	f.RunFor(90 * time.Second)
	if pending != 0 {
		log.Fatal("SNMP reconfigurations did not complete")
	}

	fmt.Println("\n== after reallocation ==")
	printAllocation(f)
	expectedCost := printErrorSeconds(plane, "expected move")

	// The hard part, asserted BEFORE the deliberately bad phase below:
	// no *unsuppressed* failures for the planned moves, and verification
	// against the (updated) database is clean.
	preSurprise := len(f.Bus.Log())
	unsuppressed, suppressed, moves := 0, 0, 0
	for _, e := range f.Bus.Log() {
		switch e.Kind {
		case gulfstream.AdapterFailed:
			if e.Suppressed {
				suppressed++
			} else {
				unsuppressed++
			}
		case gulfstream.NodeMoved:
			moves++
		}
	}
	fmt.Printf("\nmove inference: %d NodeMoved events; %d failure notifications suppressed, %d leaked\n",
		moves, suppressed, unsuppressed)
	if unsuppressed > 0 {
		log.Fatal("a planned move leaked failure notifications")
	}
	if findings := central.Verify(); len(findings) != 0 {
		log.Fatalf("verification found: %v", findings)
	}
	fmt.Println("verification against the configuration database: clean")
	if fs := plane.Audit(f); len(fs) != 0 {
		log.Fatalf("balancer routing table inconsistent with the fabric: %v", fs)
	}

	// ---- Phase 2: the same move done behind GulfStream's back ----
	victim := "globex-fe-02"
	fmt.Printf("\n== t=%v: operator rewires %s to acme WITHOUT telling GulfStream ==\n",
		f.Sched.Now(), victim)
	plane.Workload.ResetStats()
	if err := f.SurpriseMoveNode(victim, "acme"); err != nil {
		log.Fatal(err)
	}
	f.RunFor(90 * time.Second)

	surpriseCost := printErrorSeconds(plane, "surprise move")
	leaked := 0
	for _, e := range f.Bus.Log()[preSurprise:] {
		if e.Kind == gulfstream.AdapterFailed && !e.Suppressed {
			leaked++
		}
	}
	fmt.Printf("\nthe surprise move leaked %d unsuppressed failure notifications", leaked)
	if leaked == 0 {
		log.Fatal("\nexpected the surprise move to look like a failure")
	}
	findings := central.Verify()
	fmt.Printf(" and left %d verification mismatches\n", len(findings))
	if len(findings) == 0 {
		log.Fatal("expected verification to flag the out-of-band rewiring")
	}
	if surpriseCost <= expectedCost {
		log.Fatalf("surprise move (%.2f err-sec) should cost more than the expected one (%.2f err-sec)",
			surpriseCost, expectedCost)
	}

	fmt.Printf("\nsame reallocation, two ways: with expectation %.2f error-seconds, behind GulfStream's back %.2f.\n",
		expectedCost, surpriseCost)
	fmt.Println("announce your moves.")
}

func printAllocation(f *gulfstream.Farm) {
	byDomain := map[string][]string{}
	for name, info := range f.Nodes {
		if info.Domain != "" {
			byDomain[info.Domain] = append(byDomain[info.Domain], name)
		}
	}
	for _, dom := range []string{"acme", "globex"} {
		fmt.Printf("  %-7s %d servers\n", dom+":", len(byDomain[dom]))
	}
}

// printErrorSeconds reports what users saw during the phase and returns
// the total error-seconds.
func printErrorSeconds(plane *gulfstream.ServePlane, phase string) float64 {
	total := 0.0
	fmt.Printf("\nuser-visible cost of the %s:\n", phase)
	for _, s := range plane.Stats() {
		fmt.Printf("  %-7s %8d requests, %6d errors, %.2f error-seconds\n",
			s.Domain+":", s.Requests, s.Errors, s.ErrorSeconds)
		total += s.ErrorSeconds
	}
	return total
}
