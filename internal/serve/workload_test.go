package serve

import (
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/sim"
)

// testPlane wires a serving plane over the fake farm on a fresh
// scheduler and bus.
func testPlane(t *testing.T, cfg Config, pipe Pipe) (*Plane, *fakeFarm, *sim.Scheduler, *event.Bus) {
	t.Helper()
	sched := sim.NewScheduler(cfg.Seed + 1)
	farm := newFakeFarm()
	bus := event.NewBus(false)
	p := Attach(cfg, simClock{sched}, bus, farm, farm, nil, nil, pipe)
	return p, farm, sched, bus
}

func statsFor(t *testing.T, p *Plane, dom string) DomainStats {
	t.Helper()
	for _, s := range p.Stats() {
		if s.Domain == dom {
			return s
		}
	}
	t.Fatalf("no stats for domain %q", dom)
	return DomainStats{}
}

func TestWorkloadHealthyFarmNoErrors(t *testing.T) {
	p, _, sched, _ := testPlane(t, Config{Seed: 3}, nil)
	p.Start()
	sched.RunFor(60 * time.Second)
	p.Stop()

	for _, s := range p.Stats() {
		if s.Requests == 0 {
			t.Fatalf("domain %s issued no requests", s.Domain)
		}
		if s.Errors != 0 || s.ErrorSeconds != 0 {
			t.Fatalf("healthy farm produced errors: %+v", s)
		}
		if s.PeakSessions == 0 {
			t.Fatalf("domain %s never had a session in flight", s.Domain)
		}
	}
}

// An unreported kill accrues error-seconds; once the notification lands
// the balancer routes around it and the accrual stops.
func TestWorkloadUnreportedFailureAccruesErrorSeconds(t *testing.T) {
	p, farm, sched, bus := testPlane(t, Config{Seed: 3}, nil)
	p.Start()
	sched.RunFor(30 * time.Second)

	// Ground truth: the node dies now. No notification yet.
	farm.dead["acme-fe-00"] = true
	sched.RunFor(10 * time.Second)
	dark := statsFor(t, p, "acme")
	if dark.ErrorSeconds < 4 || dark.ErrorSeconds > 6 {
		// Half the acme traffic fails for 10s => ~5 error-seconds.
		t.Fatalf("10s unreported half-failure: ErrorSeconds = %.2f, want ~5", dark.ErrorSeconds)
	}
	if dark.Misroutes == 0 {
		t.Fatal("no misroutes counted during unreported failure")
	}

	// The notification arrives; errors stop accruing.
	bus.Publish(event.Event{Kind: event.NodeFailed, Node: "acme-fe-00", Time: sched.Now()})
	after := statsFor(t, p, "acme")
	sched.RunFor(20 * time.Second)
	final := statsFor(t, p, "acme")
	if final.ErrorSeconds != after.ErrorSeconds {
		t.Fatalf("errors kept accruing after notification: %.3f -> %.3f",
			after.ErrorSeconds, final.ErrorSeconds)
	}
	if findings := p.Audit(farm); len(findings) != 0 {
		t.Fatalf("audit after notification: %v", findings)
	}
	p.Stop()
}

func TestWorkloadAllBackendsDownCountsUnrouted(t *testing.T) {
	p, _, sched, bus := testPlane(t, Config{Seed: 3}, nil)
	p.Start()
	sched.RunFor(10 * time.Second)

	bus.Publish(event.Event{Kind: event.NodeFailed, Node: "acme-fe-00", Time: sched.Now()})
	bus.Publish(event.Event{Kind: event.NodeFailed, Node: "acme-fe-01", Time: sched.Now()})
	sched.RunFor(10 * time.Second)
	p.Stop()

	s := statsFor(t, p, "acme")
	if s.Unrouted == 0 {
		t.Fatalf("no unrouted requests with the whole domain down: %+v", s)
	}
	if s.ErrorSeconds < 9 {
		// Every acme request fails for 10s => ~10 error-seconds.
		t.Fatalf("ErrorSeconds = %.2f, want ~10", s.ErrorSeconds)
	}
}

// The delayed pipe converts notification latency into an error-second
// gap: same failure, same workload, strictly more error-seconds with a
// slower pipe — and the arrival sequence is identical either way.
func TestWorkloadDelayedPipeCostsErrorSeconds(t *testing.T) {
	run := func(delay time.Duration) DomainStats {
		sched := sim.NewScheduler(9)
		farm := newFakeFarm()
		bus := event.NewBus(false)
		pipe := NewDelayedPipe(simClock{sched}, delay)
		p := Attach(Config{Seed: 5}, simClock{sched}, bus, farm, farm, nil, nil, pipe)
		p.Start()
		sched.RunFor(30 * time.Second)
		farm.dead["acme-fe-00"] = true
		bus.Publish(event.Event{Kind: event.NodeFailed, Node: "acme-fe-00", Time: sched.Now()})
		sched.RunFor(30 * time.Second)
		p.Stop()
		if !p.Drained() {
			// 30s >> any tested delay; the pipe must have flushed.
			panic("pipe not drained")
		}
		s := DomainStats{}
		for _, d := range p.Stats() {
			if d.Domain == "acme" {
				s = d
			}
		}
		return s
	}

	direct := run(0)
	slow := run(5 * time.Second)
	if slow.Requests != direct.Requests {
		t.Fatalf("arrival sequence changed with pipe delay: %d vs %d requests",
			slow.Requests, direct.Requests)
	}
	if slow.ErrorSeconds <= direct.ErrorSeconds {
		t.Fatalf("delayed pipe not costlier: direct %.2f error-s, 5s-delayed %.2f",
			direct.ErrorSeconds, slow.ErrorSeconds)
	}
	// ~5s of half-failing traffic on top of the direct baseline.
	gap := slow.ErrorSeconds - direct.ErrorSeconds
	if gap < 1.5 || gap > 4.0 {
		t.Fatalf("5s delay cost %.2f extra error-seconds, want ~2.5", gap)
	}
}

func TestWorkloadDeterministicAcrossRuns(t *testing.T) {
	run := func() []DomainStats {
		p, farm, sched, bus := testPlane(t, Config{Seed: 17}, nil)
		p.Start()
		sched.RunFor(20 * time.Second)
		farm.dead["globex-fe-01"] = true
		bus.Publish(event.Event{Kind: event.NodeFailed, Node: "globex-fe-01", Time: sched.Now()})
		sched.RunFor(20 * time.Second)
		p.Stop()
		return p.Stats()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("stat lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged for %s:\n  %+v\n  %+v", a[i].Domain, a[i], b[i])
		}
	}
}

func TestWorkloadResetStats(t *testing.T) {
	p, _, sched, _ := testPlane(t, Config{Seed: 3}, nil)
	p.Start()
	sched.RunFor(20 * time.Second)
	p.Workload.ResetStats()
	s := statsFor(t, p, "acme")
	if s.Requests != 0 || s.Errors != 0 || s.ErrorSeconds != 0 {
		t.Fatalf("ResetStats left counters: %+v", s)
	}
	if p.Workload.ActiveSessions("acme") == 0 {
		t.Fatal("ResetStats should not kill in-flight sessions")
	}
	sched.RunFor(10 * time.Second)
	if statsFor(t, p, "acme").Requests == 0 {
		t.Fatal("workload stopped issuing requests after reset")
	}
	p.Stop()
}

// Millions of in-flight sessions must cost the same per tick as dozens:
// the cohort representation is counts, not objects. This is a smoke
// bound, not a benchmark — 2M sessions for a simulated minute in well
// under real-time.
func TestWorkloadScalesToMillionsOfSessions(t *testing.T) {
	cfg := Config{
		Seed:           21,
		SessionsPerSec: 40_000, // ~2.4M arrivals over 60s, mean 30s => ~1.2M in flight
		RequestsPerSec: 0.01,   // keep request math cheap; sessions are the point
	}
	p, _, sched, _ := testPlane(t, cfg, nil)
	start := time.Now()
	p.Start()
	sched.RunFor(60 * time.Second)
	p.Stop()
	elapsed := time.Since(start)

	var peak int64
	for _, s := range p.Stats() {
		if s.PeakSessions > peak {
			peak = s.PeakSessions
		}
	}
	if peak < 500_000 {
		t.Fatalf("peak sessions = %d, want >= 500k", peak)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("60 simulated seconds with %d peak sessions took %v", peak, elapsed)
	}
}
