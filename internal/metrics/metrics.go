// Package metrics collects the measurements the paper's evaluation needs
// — message and byte counts per protocol plane and per segment, latency
// samples with quantiles — plus a general registry of named counters,
// gauges and histograms fed by the protocol flight recorder
// (internal/trace). A Registry taps directly into netsim traffic under
// simulation and into trace records on real networks; gsd serves it as
// Prometheus text over HTTP.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/transport"
)

// Plane names traffic classes by destination port.
func Plane(port uint16) string {
	switch port {
	case transport.PortBeacon:
		return "beacon"
	case transport.PortMember:
		return "membership"
	case transport.PortHeartbeat:
		return "heartbeat"
	case transport.PortReport:
		return "report"
	case transport.PortJournal:
		return "journal"
	case transport.PortSNMP:
		return "snmp"
	default:
		return "other"
	}
}

// Counter accumulates message and byte totals.
type Counter struct {
	Messages uint64
	Bytes    uint64
	Dropped  uint64
}

func (c *Counter) add(bytes, dropped int) {
	c.Messages++
	c.Bytes += uint64(bytes)
	c.Dropped += uint64(dropped)
}

// Registry aggregates traffic counters and named instruments. It is safe
// for concurrent use: the simulator drives it from one goroutine, but
// gsd observes from the UDP event loop while HTTP debug handlers read
// summaries concurrently.
type Registry struct {
	mu        sync.Mutex
	byPlane   map[string]*Counter
	bySegment map[string]*Counter
	total     Counter
	since     time.Duration

	counters map[string]uint64
	gauges   map[string]float64
	hists    map[string]*Latencies
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byPlane:   make(map[string]*Counter),
		bySegment: make(map[string]*Counter),
		counters:  make(map[string]uint64),
		gauges:    make(map[string]float64),
		hists:     make(map[string]*Latencies),
	}
}

// Attach installs the registry as net's traffic tap.
func (r *Registry) Attach(net *netsim.Network) {
	net.Tap(r.Observe)
}

// Observe records one transmission trace.
func (r *Registry) Observe(tr netsim.Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total.add(tr.Bytes, tr.Dropped)
	p := Plane(tr.Dst.Port)
	c := r.byPlane[p]
	if c == nil {
		c = &Counter{}
		r.byPlane[p] = c
	}
	c.add(tr.Bytes, tr.Dropped)
	s := r.bySegment[tr.Segment]
	if s == nil {
		s = &Counter{}
		r.bySegment[tr.Segment] = s
	}
	s.add(tr.Bytes, tr.Dropped)
}

// Reset zeroes all traffic counters and instruments and marks the window
// start.
func (r *Registry) Reset(now time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byPlane = make(map[string]*Counter)
	r.bySegment = make(map[string]*Counter)
	r.total = Counter{}
	r.counters = make(map[string]uint64)
	r.gauges = make(map[string]float64)
	r.hists = make(map[string]*Latencies)
	r.since = now
}

// Total returns the all-traffic counter.
func (r *Registry) Total() Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// PlaneCounter returns the counter for a protocol plane (zero if unseen).
func (r *Registry) PlaneCounter(plane string) Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.byPlane[plane]; c != nil {
		return *c
	}
	return Counter{}
}

// SegmentCounter returns the counter for a segment (zero if unseen).
func (r *Registry) SegmentCounter(seg string) Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.bySegment[seg]; c != nil {
		return *c
	}
	return Counter{}
}

// Rate converts a message count to messages/second over the window ending
// at now.
func (r *Registry) Rate(messages uint64, now time.Duration) float64 {
	r.mu.Lock()
	since := r.since
	r.mu.Unlock()
	w := now - since
	if w <= 0 {
		return 0
	}
	return float64(messages) / w.Seconds()
}

// Summary renders all planes in name order, for experiment output.
func (r *Registry) Summary() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.byPlane))
	for n := range r.byPlane {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		c := r.byPlane[n]
		fmt.Fprintf(&b, "%-12s %8d msgs %10d bytes %6d dropped\n", n, c.Messages, c.Bytes, c.Dropped)
	}
	return b.String()
}

// --- named instruments ---

// Inc adds 1 to the named counter.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Add adds n to the named counter, creating it at zero.
func (r *Registry) Add(name string, n uint64) {
	r.mu.Lock()
	r.counters[name] += n
	r.mu.Unlock()
}

// CounterValue returns the named counter (0 if unseen).
func (r *Registry) CounterValue(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Counters snapshots every named counter.
func (r *Registry) Counters() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Set sets the named gauge.
func (r *Registry) Set(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Gauges snapshots every named gauge.
func (r *Registry) Gauges() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.gauges))
	for k, v := range r.gauges {
		out[k] = v
	}
	return out
}

// ObserveDuration adds one sample to the named histogram.
func (r *Registry) ObserveDuration(name string, d time.Duration) {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &Latencies{}
		r.hists[name] = h
	}
	h.Add(d)
	r.mu.Unlock()
}

// HistogramStats summarizes one named histogram.
type HistogramStats struct {
	N                   int
	Mean, P50, P95, Max time.Duration
}

// Histogram returns the named histogram's summary (zero if unseen).
func (r *Registry) Histogram(name string) HistogramStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		return HistogramStats{}
	}
	return HistogramStats{
		N: h.N(), Mean: h.Mean(),
		P50: h.Quantile(0.5), P95: h.Quantile(0.95), Max: h.Max(),
	}
}

// WriteProm renders the registry in the Prometheus text exposition
// format: per-plane and per-segment traffic, named counters and gauges,
// and histogram summaries with quantile labels.
func (r *Registry) WriteProm(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()

	fmt.Fprintf(w, "# TYPE gulfstream_plane_messages_total counter\n")
	for _, p := range sortedKeys(r.byPlane) {
		c := r.byPlane[p]
		fmt.Fprintf(w, "gulfstream_plane_messages_total{plane=%q} %d\n", p, c.Messages)
		fmt.Fprintf(w, "gulfstream_plane_bytes_total{plane=%q} %d\n", p, c.Bytes)
		fmt.Fprintf(w, "gulfstream_plane_dropped_total{plane=%q} %d\n", p, c.Dropped)
	}
	for _, s := range sortedKeys(r.bySegment) {
		fmt.Fprintf(w, "gulfstream_segment_messages_total{segment=%q} %d\n", s, r.bySegment[s].Messages)
	}
	for _, name := range sortedKeys(r.counters) {
		fmt.Fprintf(w, "gulfstream_%s %d\n", name, r.counters[name])
	}
	for _, name := range sortedKeys(r.gauges) {
		fmt.Fprintf(w, "gulfstream_%s %s\n", name, formatFloat(r.gauges[name]))
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		var sum time.Duration
		for _, q := range []float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(w, "gulfstream_%s_seconds{quantile=\"%g\"} %s\n",
				name, q, formatFloat(h.Quantile(q).Seconds()))
		}
		for _, s := range h.samples {
			sum += s
		}
		fmt.Fprintf(w, "gulfstream_%s_seconds_sum %s\n", name, formatFloat(sum.Seconds()))
		fmt.Fprintf(w, "gulfstream_%s_seconds_count %d\n", name, h.N())
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Latencies collects duration samples and reports order statistics. It is
// not safe for concurrent use on its own; Registry guards the histograms
// it owns.
type Latencies struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (l *Latencies) Add(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// N returns the sample count.
func (l *Latencies) N() int { return len(l.samples) }

func (l *Latencies) sortSamples() {
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
}

// Quantile returns the q-th (0..1) order statistic by the nearest-rank
// rule (index round(q*(n-1))), 0 with no samples. Plain truncation would
// bias small-sample quantiles low: with 3 samples, a truncated p95 picks
// the median.
func (l *Latencies) Quantile(q float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sortSamples()
	idx := int(math.Round(q * float64(len(l.samples)-1)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}

// Mean returns the arithmetic mean, 0 with no samples.
func (l *Latencies) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}

// Max returns the largest sample.
func (l *Latencies) Max() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sortSamples()
	return l.samples[len(l.samples)-1]
}

// Min returns the smallest sample.
func (l *Latencies) Min() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sortSamples()
	return l.samples[0]
}
