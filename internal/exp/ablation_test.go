package exp

import (
	"testing"
	"time"
)

// The Tb=0 ablation must reproduce the paper's §2.1 argument: skipping
// the beacon phase yields many singleton formations and strictly more
// membership-plane traffic than a modest beacon phase.
func TestBeaconPhaseAblation(t *testing.T) {
	o := DefaultBeaconPhase()
	o.Adapters = 16
	o.Phases = []time.Duration{0, 5 * time.Second}
	tab, err := BeaconPhase(o)
	if err != nil {
		t.Fatal(err)
	}
	zero, five := tab.Rows[0], tab.Rows[1]
	zeroMsgs, fiveMsgs := parseF(t, zero[1]), parseF(t, five[1])
	if zeroMsgs <= fiveMsgs {
		t.Fatalf("Tb=0 membership traffic (%v) not higher than Tb=5s (%v)", zeroMsgs, fiveMsgs)
	}
	zeroForms, fiveForms := parseF(t, zero[3]), parseF(t, five[3])
	if zeroForms < float64(o.Adapters)/2 {
		t.Fatalf("Tb=0 formed only %v groups; expected mass singletons", zeroForms)
	}
	if fiveForms > 3 {
		t.Fatalf("Tb=5s formed %v groups; expected ~1", fiveForms)
	}
}
