// Package snmp implements the small slice of SNMPv2c that GulfStream
// Central needs to manage network switches: BER encoding for the basic
// types, GET / GETNEXT / SET PDUs with community-string authentication, an
// agent with a pluggable MIB (implemented by the simulated switches in
// internal/switchsim), and a client with timeout/retry.
//
// The paper's prototype reconfigures Cisco 6509 VLANs "via SNMP"; this
// package reproduces that management path end to end so that moving a
// server between domains exercises a real encode → network → agent →
// VLAN-table code path rather than a function call.
package snmp

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// BER universal tags used by SNMP.
const (
	tagInteger     = 0x02
	tagOctetString = 0x04
	tagNull        = 0x05
	tagOID         = 0x06
	tagSequence    = 0x30
)

// PDU tags (context-specific, constructed).
const (
	tagGetRequest     = 0xa0
	tagGetNextRequest = 0xa1
	tagGetResponse    = 0xa2
	tagSetRequest     = 0xa3
)

// ErrTruncated reports a BER element extending past the buffer.
var ErrTruncated = errors.New("snmp: truncated BER element")

// ErrBadEncoding reports structurally invalid BER.
var ErrBadEncoding = errors.New("snmp: invalid BER encoding")

// appendLength appends a BER length (short or long form).
func appendLength(dst []byte, n int) []byte {
	if n < 0x80 {
		return append(dst, byte(n))
	}
	var tmp [8]byte
	i := len(tmp)
	for v := uint(n); v > 0; v >>= 8 {
		i--
		tmp[i] = byte(v)
	}
	dst = append(dst, byte(0x80|(len(tmp)-i)))
	return append(dst, tmp[i:]...)
}

// appendTLV appends tag, length and value.
func appendTLV(dst []byte, tag byte, val []byte) []byte {
	dst = append(dst, tag)
	dst = appendLength(dst, len(val))
	return append(dst, val...)
}

// appendInt appends a BER INTEGER (two's complement, minimal length).
func appendInt(dst []byte, v int64) []byte {
	var tmp [9]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte(v)
		v >>= 8
		// Stop when remaining bits are pure sign extension of tmp[i].
		if (v == 0 && tmp[i]&0x80 == 0) || (v == -1 && tmp[i]&0x80 != 0) {
			break
		}
	}
	return appendTLV(dst, tagInteger, tmp[i:])
}

// appendOID appends a BER OBJECT IDENTIFIER.
func appendOID(dst []byte, oid OID) ([]byte, error) {
	if len(oid) < 2 || oid[0] > 2 || oid[1] >= 40 {
		return dst, fmt.Errorf("snmp: cannot encode OID %v", oid)
	}
	var body []byte
	body = appendBase128(body, uint64(oid[0]*40+oid[1]))
	for _, sub := range oid[2:] {
		body = appendBase128(body, uint64(sub))
	}
	return appendTLV(dst, tagOID, body), nil
}

func appendBase128(dst []byte, v uint64) []byte {
	var tmp [10]byte
	i := len(tmp) - 1
	tmp[i] = byte(v & 0x7f)
	for v >>= 7; v > 0; v >>= 7 {
		i--
		tmp[i] = byte(v&0x7f) | 0x80
	}
	return append(dst, tmp[i:]...)
}

// reader walks a BER byte stream.
type reader struct {
	buf []byte
	pos int
}

func (r *reader) empty() bool { return r.pos >= len(r.buf) }

// header reads a tag and length, returning the value bounds.
func (r *reader) header() (tag byte, val []byte, err error) {
	if r.pos >= len(r.buf) {
		return 0, nil, ErrTruncated
	}
	tag = r.buf[r.pos]
	r.pos++
	if r.pos >= len(r.buf) {
		return 0, nil, ErrTruncated
	}
	l := int(r.buf[r.pos])
	r.pos++
	if l >= 0x80 {
		n := l & 0x7f
		if n == 0 || n > 4 {
			return 0, nil, ErrBadEncoding
		}
		l = 0
		for i := 0; i < n; i++ {
			if r.pos >= len(r.buf) {
				return 0, nil, ErrTruncated
			}
			l = l<<8 | int(r.buf[r.pos])
			r.pos++
		}
	}
	if l < 0 || r.pos+l > len(r.buf) {
		return 0, nil, ErrTruncated
	}
	val = r.buf[r.pos : r.pos+l]
	r.pos += l
	return tag, val, nil
}

func (r *reader) expect(want byte) ([]byte, error) {
	tag, val, err := r.header()
	if err != nil {
		return nil, err
	}
	if tag != want {
		return nil, fmt.Errorf("%w: tag 0x%02x, want 0x%02x", ErrBadEncoding, tag, want)
	}
	return val, nil
}

func (r *reader) readInt() (int64, error) {
	val, err := r.expect(tagInteger)
	if err != nil {
		return 0, err
	}
	return decodeInt(val)
}

func decodeInt(val []byte) (int64, error) {
	if len(val) == 0 || len(val) > 8 {
		return 0, ErrBadEncoding
	}
	v := int64(0)
	if val[0]&0x80 != 0 {
		v = -1
	}
	for _, b := range val {
		v = v<<8 | int64(b)
	}
	return v, nil
}

func decodeOID(val []byte) (OID, error) {
	if len(val) == 0 {
		return nil, ErrBadEncoding
	}
	var oid OID
	var v uint64
	first := true
	started := false
	for _, b := range val {
		v = v<<7 | uint64(b&0x7f)
		started = true
		if b&0x80 == 0 {
			if first {
				oid = append(oid, uint32(v/40), uint32(v%40))
				first = false
			} else {
				oid = append(oid, uint32(v))
			}
			v = 0
			started = false
		}
	}
	if started {
		return nil, ErrTruncated
	}
	return oid, nil
}

// OID is an SNMP object identifier.
type OID []uint32

// ParseOID parses dotted form like "1.3.6.1.2.1.2.2.1.8".
func ParseOID(s string) (OID, error) {
	parts := strings.Split(strings.TrimPrefix(s, "."), ".")
	if len(parts) < 2 {
		return nil, fmt.Errorf("snmp: OID %q too short", s)
	}
	oid := make(OID, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("snmp: bad OID %q: %v", s, err)
		}
		oid[i] = uint32(v)
	}
	return oid, nil
}

// MustOID is ParseOID that panics; for package-level constants.
func MustOID(s string) OID {
	oid, err := ParseOID(s)
	if err != nil {
		panic(err)
	}
	return oid
}

// String renders dotted form.
func (o OID) String() string {
	var b strings.Builder
	for i, v := range o {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(uint64(v), 10))
	}
	return b.String()
}

// Compare orders OIDs lexicographically (the GETNEXT walk order).
func (o OID) Compare(other OID) int {
	for i := 0; i < len(o) && i < len(other); i++ {
		switch {
		case o[i] < other[i]:
			return -1
		case o[i] > other[i]:
			return 1
		}
	}
	switch {
	case len(o) < len(other):
		return -1
	case len(o) > len(other):
		return 1
	}
	return 0
}

// HasPrefix reports whether o starts with prefix.
func (o OID) HasPrefix(prefix OID) bool {
	if len(o) < len(prefix) {
		return false
	}
	for i, v := range prefix {
		if o[i] != v {
			return false
		}
	}
	return true
}

// Append returns o with extra subidentifiers appended (fresh backing array).
func (o OID) Append(sub ...uint32) OID {
	out := make(OID, 0, len(o)+len(sub))
	out = append(out, o...)
	return append(out, sub...)
}

// Value is an SNMP variable value: one of Integer, OctetString, or Null.
type Value struct {
	Kind ValueKind
	Int  int64
	Str  []byte
}

// ValueKind discriminates Value.
type ValueKind int

// Value kinds.
const (
	KindNull ValueKind = iota
	KindInteger
	KindOctetString
)

// Integer makes an INTEGER value.
func Integer(v int64) Value { return Value{Kind: KindInteger, Int: v} }

// OctetString makes an OCTET STRING value.
func OctetString(s string) Value { return Value{Kind: KindOctetString, Str: []byte(s)} }

// Null is the NULL value (the placeholder in GET requests).
var Null = Value{Kind: KindNull}

func (v Value) String() string {
	switch v.Kind {
	case KindInteger:
		return strconv.FormatInt(v.Int, 10)
	case KindOctetString:
		return string(v.Str)
	default:
		return "null"
	}
}

// Equal reports deep value equality.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindInteger:
		return v.Int == o.Int
	case KindOctetString:
		return string(v.Str) == string(o.Str)
	default:
		return true
	}
}

func appendValue(dst []byte, v Value) []byte {
	switch v.Kind {
	case KindInteger:
		return appendInt(dst, v.Int)
	case KindOctetString:
		return appendTLV(dst, tagOctetString, v.Str)
	default:
		return appendTLV(dst, tagNull, nil)
	}
}

// VarBind pairs an OID with a value.
type VarBind struct {
	OID   OID
	Value Value
}

// PDUType is the SNMP operation.
type PDUType int

// PDU types.
const (
	Get PDUType = iota
	GetNext
	Response
	Set
)

func (t PDUType) String() string {
	switch t {
	case Get:
		return "get"
	case GetNext:
		return "getnext"
	case Response:
		return "response"
	case Set:
		return "set"
	default:
		return fmt.Sprintf("PDUType(%d)", int(t))
	}
}

func (t PDUType) tag() byte {
	switch t {
	case Get:
		return tagGetRequest
	case GetNext:
		return tagGetNextRequest
	case Response:
		return tagGetResponse
	case Set:
		return tagSetRequest
	}
	return 0
}

// SNMP error-status codes (the subset agents here produce).
const (
	ErrStatusNoError     = 0
	ErrStatusTooBig      = 1
	ErrStatusNoSuchName  = 2
	ErrStatusBadValue    = 3
	ErrStatusGenErr      = 5
	ErrStatusNotWritable = 17
)

// Message is a complete SNMPv2c message.
type Message struct {
	Community string
	Type      PDUType
	RequestID int32
	ErrStatus int
	ErrIndex  int
	Bindings  []VarBind
}

const snmpVersion2c = 1

// Marshal encodes the message to BER.
func (m *Message) Marshal() ([]byte, error) {
	var binds []byte
	for _, vb := range m.Bindings {
		var one []byte
		var err error
		one, err = appendOID(one, vb.OID)
		if err != nil {
			return nil, err
		}
		one = appendValue(one, vb.Value)
		binds = appendTLV(binds, tagSequence, one)
	}
	var pdu []byte
	pdu = appendInt(pdu, int64(m.RequestID))
	pdu = appendInt(pdu, int64(m.ErrStatus))
	pdu = appendInt(pdu, int64(m.ErrIndex))
	pdu = appendTLV(pdu, tagSequence, binds)

	var body []byte
	body = appendInt(body, snmpVersion2c)
	body = appendTLV(body, tagOctetString, []byte(m.Community))
	body = appendTLV(body, m.Type.tag(), pdu)
	return appendTLV(nil, tagSequence, body), nil
}

// Unmarshal decodes a BER-encoded SNMPv2c message.
func Unmarshal(data []byte) (*Message, error) {
	top := &reader{buf: data}
	body, err := top.expect(tagSequence)
	if err != nil {
		return nil, err
	}
	r := &reader{buf: body}
	ver, err := r.readInt()
	if err != nil {
		return nil, err
	}
	if ver != snmpVersion2c {
		return nil, fmt.Errorf("snmp: unsupported version %d", ver)
	}
	comm, err := r.expect(tagOctetString)
	if err != nil {
		return nil, err
	}
	tag, pduBytes, err := r.header()
	if err != nil {
		return nil, err
	}
	m := &Message{Community: string(comm)}
	switch tag {
	case tagGetRequest:
		m.Type = Get
	case tagGetNextRequest:
		m.Type = GetNext
	case tagGetResponse:
		m.Type = Response
	case tagSetRequest:
		m.Type = Set
	default:
		return nil, fmt.Errorf("%w: unknown PDU tag 0x%02x", ErrBadEncoding, tag)
	}
	p := &reader{buf: pduBytes}
	rid, err := p.readInt()
	if err != nil {
		return nil, err
	}
	m.RequestID = int32(rid)
	es, err := p.readInt()
	if err != nil {
		return nil, err
	}
	m.ErrStatus = int(es)
	ei, err := p.readInt()
	if err != nil {
		return nil, err
	}
	m.ErrIndex = int(ei)
	bindsBytes, err := p.expect(tagSequence)
	if err != nil {
		return nil, err
	}
	b := &reader{buf: bindsBytes}
	for !b.empty() {
		one, err := b.expect(tagSequence)
		if err != nil {
			return nil, err
		}
		vr := &reader{buf: one}
		oidBytes, err := vr.expect(tagOID)
		if err != nil {
			return nil, err
		}
		oid, err := decodeOID(oidBytes)
		if err != nil {
			return nil, err
		}
		vtag, vbytes, err := vr.header()
		if err != nil {
			return nil, err
		}
		var val Value
		switch vtag {
		case tagInteger:
			iv, err := decodeInt(vbytes)
			if err != nil {
				return nil, err
			}
			val = Integer(iv)
		case tagOctetString:
			val = Value{Kind: KindOctetString, Str: append([]byte(nil), vbytes...)}
		case tagNull:
			val = Null
		default:
			return nil, fmt.Errorf("%w: unsupported value tag 0x%02x", ErrBadEncoding, vtag)
		}
		m.Bindings = append(m.Bindings, VarBind{OID: oid, Value: val})
	}
	return m, nil
}

// sortOIDs orders a slice of OIDs in walk order (used by MapMIB).
func sortOIDs(oids []OID) {
	sort.Slice(oids, func(i, j int) bool { return oids[i].Compare(oids[j]) < 0 })
}
