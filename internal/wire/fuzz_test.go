package wire

import (
	"reflect"
	"testing"
)

// FuzzDecode seeds the corpus with one encoding of every message type —
// including the journal stream pair — plus a few malformed frames, and
// checks that any input that decodes also re-encodes to a stable value.
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(Encode(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add([]byte{0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		again, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("%v: re-decode failed: %v", m.Type(), err)
		}
		norm(m)
		norm(again)
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("%v: unstable round trip:\n first %#v\n again %#v", m.Type(), m, again)
		}
	})
}
