package detect

import (
	"time"

	"repro/internal/amg"
	"repro/internal/transport"
	"repro/internal/wire"
)

// randPing implements the randomized distributed pinging protocol the
// paper cites as its scalable alternative to heartbeat rings (§4.2,
// ref [9] — Gupta, Chandra & Goldszmidt). Each protocol period the adapter
// pings one uniformly random member; on silence it asks K proxies to ping
// the target on its behalf; only if both the direct and all indirect paths
// stay silent is the target suspected. Per-member network load is constant
// in group size.
type randPing struct {
	p   Params
	env Env

	view    amg.Membership
	peers   []transport.IP
	nonce   uint64
	ticker  transport.Timer
	stopped bool

	// outstanding direct-or-indirect probes by nonce
	waiting map[uint64]*pingRound
}

type pingRound struct {
	target   transport.IP
	indirect bool
	timer    transport.Timer
}

func newRandPing(p Params, env Env) *randPing {
	return &randPing{p: p, env: env, waiting: make(map[uint64]*pingRound)}
}

// Kind implements Detector.
func (r *randPing) Kind() Kind { return RandPing }

// Reconfigure implements Detector.
func (r *randPing) Reconfigure(view amg.Membership) {
	r.view = view
	self := r.env.Self()
	r.peers = r.peers[:0]
	for _, m := range view.Members {
		if m.IP != self {
			r.peers = append(r.peers, m.IP)
		}
	}
	// Rounds for removed members stay pending; their timers resolve
	// harmlessly because suspicion re-checks membership.
	if r.ticker == nil && !r.stopped {
		r.ticker = r.env.Clock().AfterFunc(r.p.Interval, r.tick)
	}
}

func (r *randPing) tick() {
	if r.stopped {
		return
	}
	if len(r.peers) > 0 {
		target := r.peers[r.env.Rand().Intn(len(r.peers))]
		r.nonce++
		nonce := r.nonce
		r.env.Send(target, &wire.Ping{From: r.env.Self(), Nonce: nonce, Leader: r.view.Leader()})
		round := &pingRound{target: target}
		r.waiting[nonce] = round
		round.timer = r.env.Clock().AfterFunc(r.p.PingTimeout, func() { r.directTimeout(nonce) })
	}
	if r.stopped || r.ticker == nil {
		return
	}
	r.ticker.Reset(r.p.Interval)
}

// directTimeout escalates to indirect pings through up to Proxies members.
func (r *randPing) directTimeout(nonce uint64) {
	round, ok := r.waiting[nonce]
	if !ok || r.stopped {
		return
	}
	round.indirect = true
	proxies := r.pickProxies(round.target)
	if len(proxies) == 0 {
		r.conclude(nonce)
		return
	}
	for _, p := range proxies {
		r.env.Send(p, &wire.PingReq{From: r.env.Self(), Target: round.target, Nonce: nonce})
	}
	// Give indirect probes the rest of the protocol period.
	wait := r.p.Interval - r.p.PingTimeout
	if wait < r.p.PingTimeout {
		wait = r.p.PingTimeout
	}
	round.timer = r.env.Clock().AfterFunc(wait, func() { r.conclude(nonce) })
}

func (r *randPing) pickProxies(target transport.IP) []transport.IP {
	var cands []transport.IP
	for _, p := range r.peers {
		if p != target {
			cands = append(cands, p)
		}
	}
	r.env.Rand().Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) > r.p.Proxies {
		cands = cands[:r.p.Proxies]
	}
	return cands
}

// conclude fires after direct and indirect probes all stayed silent.
func (r *randPing) conclude(nonce uint64) {
	round, ok := r.waiting[nonce]
	if !ok || r.stopped {
		return
	}
	delete(r.waiting, nonce)
	if r.view.Contains(round.target) {
		r.env.ReportSuspect(round.target, wire.ReasonPingTimeout)
	}
}

// Handle implements Detector.
func (r *randPing) Handle(src transport.IP, m wire.Message) bool {
	if r.stopped {
		switch m.(type) {
		case *wire.Ping, *wire.PingReq, *wire.PingAck:
			return true
		}
		return false
	}
	switch msg := m.(type) {
	case *wire.Ping:
		// Answer to whoever sent it (requester or proxy), tagging the
		// original requester so proxies can route the ack home.
		r.env.Send(src, &wire.PingAck{From: r.env.Self(), Target: msg.From, Nonce: msg.Nonce})
		return true
	case *wire.PingReq:
		// Proxy: ping the target on the requester's behalf. We forward
		// the requester's identity inside Ping.From so the target's ack
		// comes back through us carrying it.
		r.env.Send(msg.Target, &wire.Ping{From: msg.From, Nonce: msg.Nonce})
		return true
	case *wire.PingAck:
		if msg.Target == r.env.Self() || msg.Target == 0 {
			// Ack for one of our rounds (direct, or proxied home).
			if round, ok := r.waiting[msg.Nonce]; ok && round.target == msg.From {
				round.timer.Stop()
				delete(r.waiting, msg.Nonce)
			}
			return true
		}
		// We are the proxy on the return path: forward to the requester.
		r.env.Send(msg.Target, msg)
		return true
	default:
		return false
	}
}

// Stop implements Detector.
func (r *randPing) Stop() {
	r.stopped = true
	if r.ticker != nil {
		r.ticker.Stop()
		r.ticker = nil
	}
	for n, round := range r.waiting {
		round.timer.Stop()
		delete(r.waiting, n)
	}
}

// subgroupDetector implements §4.2's subgroup scheme: the membership is
// split into rank-contiguous subgroups; each subgroup runs a tight
// unidirectional ring internally, and the group leader polls one
// representative per foreign subgroup at low frequency to catch the rare
// catastrophic loss of an entire subgroup.
type subgroupDetector struct {
	p   Params
	env Env

	view    amg.Membership
	sub     []wire.Member // my subgroup, rank order
	subIdx  int
	targets []transport.IP
	mon     *monitorSet
	seq     uint64
	hb      wire.Heartbeat // reused each tick
	ticker  transport.Timer
	stopped bool

	// leader-side polling state
	pollTicker  transport.Timer
	pollNonce   uint64
	pollPending map[uint64]bool
}

func newSubgroup(p Params, env Env) *subgroupDetector {
	return &subgroupDetector{p: p, env: env, mon: newMonitorSet(), pollPending: make(map[uint64]bool)}
}

// Kind implements Detector.
func (s *subgroupDetector) Kind() Kind { return Subgroup }

// Reconfigure implements Detector.
func (s *subgroupDetector) Reconfigure(view amg.Membership) {
	s.view = view
	self := s.env.Self()
	s.sub = nil
	s.subIdx = -1
	s.targets = s.targets[:0]
	var monitored []transport.IP

	subs := view.Subgroups(s.p.SubgroupSize)
	for i, sub := range subs {
		for _, m := range sub {
			if m.IP == self {
				s.sub = sub
				s.subIdx = i
			}
		}
	}
	if len(s.sub) >= 2 {
		// Ring within the subgroup.
		pos := -1
		for i, m := range s.sub {
			if m.IP == self {
				pos = i
			}
		}
		right := s.sub[(pos+1)%len(s.sub)].IP
		left := s.sub[(pos-1+len(s.sub))%len(s.sub)].IP
		s.targets = appendUnique(s.targets, self, right)
		monitored = appendUnique(nil, self, left)
	}
	s.mon.reset(monitored, s.env.Clock().Now())
	if s.ticker == nil && !s.stopped {
		s.ticker = s.env.Clock().AfterFunc(s.p.Interval, s.tick)
	}
	// Leader polls foreign subgroups.
	if view.Leader() == self && len(subs) > 1 {
		if s.pollTicker == nil && !s.stopped {
			s.pollTicker = s.env.Clock().AfterFunc(s.p.PollInterval, s.poll)
		}
	} else if s.pollTicker != nil {
		s.pollTicker.Stop()
		s.pollTicker = nil
	}
}

func (s *subgroupDetector) tick() {
	if s.stopped {
		return
	}
	s.seq++
	s.hb = wire.Heartbeat{From: s.env.Self(), Seq: s.seq, Version: s.view.Version, Leader: s.view.Leader()}
	for _, t := range s.targets {
		s.env.Send(t, &s.hb)
	}
	limit := time.Duration(s.p.MissThreshold) * s.p.Interval
	now := s.env.Clock().Now()
	for _, ip := range s.mon.overdue(now, limit, limit) {
		s.mon.markSuspected(ip, now)
		s.env.ReportSuspect(ip, wire.ReasonMissedHeartbeats)
	}
	if s.stopped || s.ticker == nil {
		return
	}
	s.ticker.Reset(s.p.Interval)
}

// poll sends a SubPoll to every foreign subgroup, trying each member in
// rank order until one answers within PollTimeout; a fully silent
// subgroup is reported member by member.
func (s *subgroupDetector) poll() {
	if s.stopped {
		return
	}
	subs := s.view.Subgroups(s.p.SubgroupSize)
	for i, sub := range subs {
		if i == s.subIdx {
			continue
		}
		s.pollSubgroup(uint32(i), sub, 0)
	}
	if s.stopped || s.pollTicker == nil {
		return
	}
	s.pollTicker.Reset(s.p.PollInterval)
}

func (s *subgroupDetector) pollSubgroup(idx uint32, sub []wire.Member, attempt int) {
	if s.stopped {
		return
	}
	if attempt >= len(sub) {
		// Catastrophic: the whole subgroup is silent.
		for _, m := range sub {
			s.env.ReportSuspect(m.IP, wire.ReasonSubgroupDead)
		}
		return
	}
	s.pollNonce++
	nonce := s.pollNonce
	rep := sub[attempt].IP
	s.pollPending[nonce] = true
	s.env.Send(rep, &wire.SubPoll{From: s.env.Self(), Subgroup: idx, Nonce: nonce})
	s.env.Clock().AfterFunc(s.p.PollTimeout, func() {
		if !s.pollPending[nonce] {
			return // answered in time
		}
		delete(s.pollPending, nonce)
		if s.stopped {
			return
		}
		s.pollSubgroup(idx, sub, attempt+1)
	})
}

// Handle implements Detector.
func (s *subgroupDetector) Handle(src transport.IP, m wire.Message) bool {
	if s.stopped {
		switch m.(type) {
		case *wire.Heartbeat, *wire.SubPoll, *wire.SubPollAck:
			return true
		}
		return false
	}
	switch msg := m.(type) {
	case *wire.Heartbeat:
		s.mon.heard(msg.From, s.env.Clock().Now())
		return true
	case *wire.SubPoll:
		alive := uint32(1)
		limit := time.Duration(s.p.MissThreshold) * s.p.Interval
		now := s.env.Clock().Now()
		for ip, at := range s.mon.lastSeen {
			_ = ip
			if now-at <= limit {
				alive++
			}
		}
		s.env.Send(src, &wire.SubPollAck{From: s.env.Self(), Subgroup: msg.Subgroup, Nonce: msg.Nonce, Alive: alive})
		return true
	case *wire.SubPollAck:
		delete(s.pollPending, msg.Nonce)
		return true
	default:
		return false
	}
}

// Stop implements Detector.
func (s *subgroupDetector) Stop() {
	s.stopped = true
	if s.ticker != nil {
		s.ticker.Stop()
		s.ticker = nil
	}
	if s.pollTicker != nil {
		s.pollTicker.Stop()
		s.pollTicker = nil
	}
}
