package check

import (
	"testing"
	"time"
)

// failIfContains builds a predicate that fails whenever every op in
// `need` (matched by node name) survives in the candidate — the classic
// ddmin test harness shape.
func failIfContains(need ...string) func(Schedule) bool {
	return func(s Schedule) bool {
		left := map[string]bool{}
		for _, n := range need {
			left[n] = true
		}
		for _, op := range s.Ops {
			delete(left, op.Node)
		}
		return len(left) == 0
	}
}

func opsNamed(names ...string) []Op {
	out := make([]Op, len(names))
	for i, n := range names {
		out[i] = Op{At: time.Duration(i+1) * time.Second, Kind: OpKillNode, Node: n}
	}
	return out
}

func TestShrinkFindsSingleCulprit(t *testing.T) {
	s := Schedule{Seed: 1, Settle: 2 * time.Minute,
		Ops: opsNamed("a", "b", "c", "d", "e", "f", "g", "h")}
	min, runs := Shrink(s, failIfContains("e"), 100)
	if len(min.Ops) != 1 || min.Ops[0].Node != "e" {
		t.Fatalf("want just op e, got %+v after %d runs", min.Ops, runs)
	}
	if min.Settle < minSettle {
		t.Fatalf("settle shrunk below floor: %v", min.Settle)
	}
}

func TestShrinkKeepsInteractingPair(t *testing.T) {
	s := Schedule{Seed: 1, Settle: time.Minute,
		Ops: opsNamed("a", "b", "c", "d", "e", "f", "g", "h")}
	min, _ := Shrink(s, failIfContains("b", "g"), 200)
	if len(min.Ops) != 2 {
		t.Fatalf("want the b+g pair, got %+v", min.Ops)
	}
	got := map[string]bool{min.Ops[0].Node: true, min.Ops[1].Node: true}
	if !got["b"] || !got["g"] {
		t.Fatalf("want ops b and g, got %+v", min.Ops)
	}
}

func TestShrinkRespectsRunBudget(t *testing.T) {
	s := Schedule{Seed: 1, Settle: time.Minute, Ops: opsNamed("a", "b", "c", "d")}
	calls := 0
	min, runs := Shrink(s, func(c Schedule) bool {
		calls++
		return failIfContains("a", "c")(c)
	}, 3)
	if calls > 3 || runs > 3 {
		t.Fatalf("budget exceeded: %d calls, %d reported", calls, runs)
	}
	// Whatever it returns must still contain the culprits (it only keeps
	// candidates that fail).
	if !failIfContains("a", "c")(min) {
		t.Fatalf("shrunk schedule no longer fails: %+v", min.Ops)
	}
}

func TestShrinkHalvesSettle(t *testing.T) {
	s := Schedule{Seed: 1, Settle: 4 * time.Minute, Ops: opsNamed("a")}
	min, _ := Shrink(s, func(Schedule) bool { return true }, 50)
	if min.Settle >= 4*time.Minute {
		t.Fatalf("settle was not reduced: %v", min.Settle)
	}
	if min.Settle < minSettle {
		t.Fatalf("settle below floor: %v", min.Settle)
	}
}
