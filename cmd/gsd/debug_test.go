package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/transport"
)

// debugRecorder builds a recorder holding one full 2PC round plus a
// beacon, spread across two nodes.
func debugRecorder(t *testing.T) *trace.Recorder {
	t.Helper()
	rec := trace.New(64)
	rec.Enable(true)
	leader := transport.MakeIP(10, 1, 0, 1)
	peer := transport.MakeIP(10, 1, 0, 2)
	rec.Record(trace.Record{Kind: trace.KBeaconSent, Node: "web-01", Self: leader, Group: leader})
	rec.Record(trace.Record{Kind: trace.KPrepareSent, Node: "web-01", Self: leader, Group: leader, Token: 7, Count: 2})
	rec.Record(trace.Record{Kind: trace.KPrepareAck, Node: "web-01", Self: leader, Peer: peer, Group: leader, Token: 7})
	rec.Record(trace.Record{Kind: trace.KCommitSent, Node: "web-01", Self: leader, Group: leader, Token: 7, Count: 2})
	rec.Record(trace.Record{Kind: trace.KCommitRecv, Node: "web-02", Self: peer, Group: leader, Token: 7})
	return rec
}

func TestServeTraceFullDump(t *testing.T) {
	rec := debugRecorder(t)
	w := httptest.NewRecorder()
	serveTrace(w, httptest.NewRequest("GET", "/trace", nil), rec)
	var dump struct {
		Total    uint64            `json:"total"`
		Capacity int               `json:"capacity"`
		Records  []json.RawMessage `json:"records"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &dump); err != nil {
		t.Fatalf("bad dump JSON: %v\n%s", err, w.Body.String())
	}
	if dump.Total != 5 || len(dump.Records) != 5 || dump.Capacity != 64 {
		t.Fatalf("dump = total %d cap %d records %d, want 5/64/5", dump.Total, dump.Capacity, len(dump.Records))
	}
}

func TestServeTraceFilters(t *testing.T) {
	rec := debugRecorder(t)
	for _, tc := range []struct {
		query string
		want  int
	}{
		{"?kind=2pc-", 4},
		{"?kind=beacon", 1},
		{"?node=web-02", 1},
		{"?kind=2pc-&n=2", 2},
		{"?kind=no-such-kind", 0},
	} {
		w := httptest.NewRecorder()
		serveTrace(w, httptest.NewRequest("GET", "/trace"+tc.query, nil), rec)
		var dump struct {
			Records []json.RawMessage `json:"records"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &dump); err != nil {
			t.Fatalf("%s: bad JSON: %v", tc.query, err)
		}
		if len(dump.Records) != tc.want {
			t.Errorf("%s: %d records, want %d", tc.query, len(dump.Records), tc.want)
		}
	}
}

func TestServeTraceTxns(t *testing.T) {
	rec := debugRecorder(t)
	w := httptest.NewRecorder()
	serveTrace(w, httptest.NewRequest("GET", "/trace?txns=1", nil), rec)
	var txns []struct {
		ID      string            `json:"id"`
		Records []json.RawMessage `json:"records"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &txns); err != nil {
		t.Fatalf("bad txns JSON: %v\n%s", err, w.Body.String())
	}
	if len(txns) != 1 || txns[0].ID != "10.1.0.1#7" || len(txns[0].Records) != 4 {
		t.Fatalf("txns = %+v, want one 10.1.0.1#7 with 4 records", txns)
	}
}

func TestServeTraceBadN(t *testing.T) {
	w := httptest.NewRecorder()
	serveTrace(w, httptest.NewRequest("GET", "/trace?n=bogus", nil), debugRecorder(t))
	if w.Code != 400 || !strings.Contains(w.Body.String(), "bad n") {
		t.Fatalf("code %d body %q, want 400 bad n", w.Code, w.Body.String())
	}
}
