// Quickstart: the smallest complete GulfStream farm.
//
// Builds one hosted domain plus an administrative segment, lets the
// daemons discover the topology (beaconing → AMG formation → reports to
// GulfStream Central), prints the discovered groups, then kills a node
// and shows the failure being detected, verified, and correlated.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	gulfstream "repro"
)

func main() {
	f, err := gulfstream.NewFarm(gulfstream.Spec{
		Seed:       42,
		AdminNodes: 2,
		Domains: []gulfstream.DomainSpec{
			{Name: "acme", FrontEnds: 2, BackEnds: 3},
		},
		StartSkew:    2 * time.Second,
		RecordEvents: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Live event feed, as a management application would consume it.
	f.Bus.Subscribe(func(e gulfstream.Event) {
		fmt.Printf("  event %v\n", e)
	})

	fmt.Println("== starting daemons (staggered boot) ==")
	f.Start()
	at, ok := f.RunUntilStable(2 * time.Minute)
	if !ok {
		log.Fatal("farm never stabilized")
	}
	fmt.Printf("\n== topology stable at t=%v (Tb+Ts+Tgsc+δ) ==\n", at)

	central := f.ActiveCentral()
	fmt.Println("\ndiscovered Adapter Membership Groups (leader -> members):")
	for leader, members := range central.Groups() {
		seg, _ := f.SegmentOf(leader)
		fmt.Printf("  %v (%s): %d members\n", leader, seg, len(members))
		for _, m := range members {
			fmt.Printf("      %v\n", m)
		}
	}

	// Verify the discovered topology against the configuration database.
	if findings := central.Verify(); len(findings) == 0 {
		fmt.Println("\nverification against the configuration database: clean")
	} else {
		fmt.Printf("\nverification findings: %v\n", findings)
	}

	// Kill a back-end node and watch detection, verification and
	// node-level correlation happen.
	victim := "acme-be-01"
	fmt.Printf("\n== killing node %s at t=%v ==\n", victim, f.Sched.Now())
	if err := f.KillNode(victim); err != nil {
		log.Fatal(err)
	}
	f.RunFor(30 * time.Second)

	if central.NodeAlive(victim) {
		log.Fatal("node failure was not correlated")
	}
	fmt.Printf("\nGulfStream Central: node %s is down (all adapters failed)\n", victim)

	// Bring it back.
	fmt.Printf("\n== restarting %s ==\n", victim)
	if err := f.RestartNode(victim); err != nil {
		log.Fatal(err)
	}
	f.RunFor(30 * time.Second)
	if !central.NodeAlive(victim) {
		log.Fatal("node recovery was not observed")
	}
	fmt.Printf("\nnode %s recovered; farm steady again at t=%v\n", victim, f.Sched.Now())
}
