// Partition: independent AMG formation and merge (paper §2.1).
//
// Two halves of one logical segment boot on separate VLANs (a partition),
// each forming its own Adapter Membership Group with its own leader. When
// the partition heals, the two groups discover each other through leader
// beacons and merge under the higher-IP leader via MergeOffer + two-phase
// commit. GulfStream Central sees the merge as membership movement, not
// as failures.
//
// Run with:
//
//	go run ./examples/partition
package main

import (
	"fmt"
	"log"
	"time"

	gulfstream "repro"
)

func main() {
	const half = 5
	f, err := gulfstream.NewFarm(gulfstream.Spec{
		Seed:            11,
		UniformNodes:    2 * half,
		UniformAdapters: 2, // admin + one data adapter per node
		NodesPerSwitch:  2 * half,
		StartSkew:       time.Second,
		RecordEvents:    true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pre-partition the data segment: the second half's data adapters go
	// onto a private VLAN before boot.
	var partB []gulfstream.IP
	for i := half; i < 2*half; i++ {
		ip := f.Nodes[fmt.Sprintf("node-%03d", i)].Adapters[1]
		partB = append(partB, ip)
		sw, port, _ := f.Fabric.Locate(ip)
		if err := sw.SetPortVLAN(port, 900); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("== boot with the data segment partitioned ==")
	f.Start()
	if _, ok := f.RunUntilStable(2 * time.Minute); !ok {
		log.Fatal("never stabilized")
	}
	printDataGroups(f, 2*half)

	fmt.Printf("\n== t=%v: healing the partition (VLAN rewrite) ==\n", f.Sched.Now())
	for _, ip := range partB {
		sw, port, _ := f.Fabric.Locate(ip)
		if err := sw.SetPortVLAN(port, 11); err != nil {
			log.Fatal(err)
		}
	}
	healedAt := f.Sched.Now()

	// Wait for one merged group across all data adapters.
	deadline := f.Sched.Now() + 3*time.Minute
	for f.Sched.Now() < deadline {
		f.RunFor(time.Second)
		if n, _ := mergedSize(f, 2*half); n == 2*half {
			break
		}
	}
	n, leader := mergedSize(f, 2*half)
	if n != 2*half {
		log.Fatalf("merge incomplete: %d of %d", n, 2*half)
	}
	fmt.Printf("\n== merged %v after heal ==\n", f.Sched.Now()-healedAt)
	printDataGroups(f, 2*half)
	fmt.Printf("\nfinal leader %v is the highest data adapter — merges are led by the\n", leader)
	fmt.Println("AMG leader with the highest IP address, exactly as the paper specifies.")

	// No failures should have been reported for the merging members.
	for _, e := range f.Bus.Filter(gulfstream.AdapterFailed) {
		for _, ip := range partB {
			if e.Adapter == ip && !e.Suppressed {
				fmt.Printf("note: transient failure report during partition life: %v\n", e)
			}
		}
	}
}

// mergedSize reports the size of the group containing node-000's data
// adapter and its leader.
func mergedSize(f *gulfstream.Farm, total int) (int, gulfstream.IP) {
	ip := f.Nodes["node-000"].Adapters[1]
	v, ok := f.Daemons["node-000"].View(ip)
	if !ok {
		return 0, 0
	}
	// All daemons must agree before we call it merged.
	for i := 0; i < total; i++ {
		name := fmt.Sprintf("node-%03d", i)
		a := f.Nodes[name].Adapters[1]
		w, ok := f.Daemons[name].View(a)
		if !ok || !w.Equal(v) {
			return 0, 0
		}
	}
	return v.Size(), v.Leader()
}

func printDataGroups(f *gulfstream.Farm, total int) {
	groups := map[gulfstream.IP][]gulfstream.IP{}
	for i := 0; i < total; i++ {
		name := fmt.Sprintf("node-%03d", i)
		ip := f.Nodes[name].Adapters[1]
		if v, ok := f.Daemons[name].View(ip); ok {
			groups[v.Leader()] = append(groups[v.Leader()], ip)
		}
	}
	fmt.Printf("data-segment AMGs (%d):\n", len(groups))
	for leader, members := range groups {
		fmt.Printf("  leader %v: %d members\n", leader, len(members))
	}
}
