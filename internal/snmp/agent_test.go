package snmp

import (
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
)

type snmpFixture struct {
	sched  *sim.Scheduler
	client *Client
	agent  transport.Addr
	mib    *MapMIB
}

func newSNMPFixture(t *testing.T, loss float64) *snmpFixture {
	t.Helper()
	sched := sim.NewScheduler(21)
	res := netsim.NewStaticResolver()
	net := netsim.New(sched, res)
	if loss > 0 {
		net.SetDefaultProfile(netsim.LinkProfile{Loss: loss, Latency: time.Millisecond})
	}
	agentEP := net.AddAdapter(transport.MakeIP(10, 9, 0, 1), "switch0")
	clientEP := net.AddAdapter(transport.MakeIP(10, 9, 0, 2), "central")
	res.Attach(agentEP.LocalIP(), "admin")
	res.Attach(clientEP.LocalIP(), "admin")

	mib := NewMapMIB()
	mib.Define(MustOID("1.3.6.1.4.1.2.1.1"), Integer(100), true)
	mib.Define(MustOID("1.3.6.1.4.1.2.1.2"), Integer(200), false)
	mib.Define(MustOID("1.3.6.1.4.1.2.2.1"), OctetString("port-1"), false)
	NewAgent(agentEP, "farm-admin", mib)

	cl := NewClient(clientEP, schedClock{sched}, "farm-admin", 40000)
	return &snmpFixture{
		sched:  sched,
		client: cl,
		agent:  transport.Addr{IP: agentEP.LocalIP(), Port: transport.PortSNMP},
		mib:    mib,
	}
}

// schedClock adapts *sim.Scheduler to transport.Clock.
type schedClock struct{ s *sim.Scheduler }

func (c schedClock) Now() time.Duration { return c.s.Now() }
func (c schedClock) AfterFunc(d time.Duration, fn func()) transport.Timer {
	return c.s.AfterFunc(d, fn)
}

func TestGetRoundTrip(t *testing.T) {
	f := newSNMPFixture(t, 0)
	var got Value
	var gotErr error
	done := false
	f.client.Get(f.agent, MustOID("1.3.6.1.4.1.2.1.1"), func(v Value, err error) {
		got, gotErr, done = v, err, true
	})
	f.sched.Run()
	if !done || gotErr != nil {
		t.Fatalf("done=%v err=%v", done, gotErr)
	}
	if !got.Equal(Integer(100)) {
		t.Fatalf("got %v, want 100", got)
	}
}

func TestGetNoSuchName(t *testing.T) {
	f := newSNMPFixture(t, 0)
	var gotErr error
	f.client.Get(f.agent, MustOID("1.3.6.1.4.1.9.9.9"), func(_ Value, err error) { gotErr = err })
	f.sched.Run()
	var re *RequestError
	if !errors.As(gotErr, &re) || re.Status != ErrStatusNoSuchName {
		t.Fatalf("err = %v, want noSuchName RequestError", gotErr)
	}
}

func TestSetWritableAndHook(t *testing.T) {
	f := newSNMPFixture(t, 0)
	var hookOID OID
	var hookVal Value
	f.mib.OnSet = func(oid OID, v Value) { hookOID, hookVal = oid, v }
	var setErr error
	f.client.Set(f.agent, MustOID("1.3.6.1.4.1.2.1.1"), Integer(103), func(err error) { setErr = err })
	f.sched.Run()
	if setErr != nil {
		t.Fatal(setErr)
	}
	if v, _ := f.mib.Get(MustOID("1.3.6.1.4.1.2.1.1")); !v.Equal(Integer(103)) {
		t.Fatalf("MIB value = %v after set", v)
	}
	if hookOID.String() != "1.3.6.1.4.1.2.1.1" || !hookVal.Equal(Integer(103)) {
		t.Fatalf("hook got %v=%v", hookOID, hookVal)
	}
}

func TestSetReadOnlyRejected(t *testing.T) {
	f := newSNMPFixture(t, 0)
	var setErr error
	f.client.Set(f.agent, MustOID("1.3.6.1.4.1.2.1.2"), Integer(9), func(err error) { setErr = err })
	f.sched.Run()
	var re *RequestError
	if !errors.As(setErr, &re) || re.Status != ErrStatusNotWritable {
		t.Fatalf("err = %v, want notWritable", setErr)
	}
	if v, _ := f.mib.Get(MustOID("1.3.6.1.4.1.2.1.2")); !v.Equal(Integer(200)) {
		t.Fatal("read-only value changed")
	}
}

func TestSetValidateVeto(t *testing.T) {
	f := newSNMPFixture(t, 0)
	f.mib.Validate = func(_ OID, v Value) error {
		if v.Kind != KindInteger {
			return ErrBadValue
		}
		return nil
	}
	var setErr error
	f.client.Set(f.agent, MustOID("1.3.6.1.4.1.2.1.1"), OctetString("nope"), func(err error) { setErr = err })
	f.sched.Run()
	var re *RequestError
	if !errors.As(setErr, &re) || re.Status != ErrStatusBadValue {
		t.Fatalf("err = %v, want badValue", setErr)
	}
}

func TestWalkPrefix(t *testing.T) {
	f := newSNMPFixture(t, 0)
	var got []VarBind
	var gotErr error
	f.client.WalkPrefix(f.agent, MustOID("1.3.6.1.4.1.2.1"), func(vbs []VarBind, err error) {
		got, gotErr = vbs, err
	})
	f.sched.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if len(got) != 2 {
		t.Fatalf("walk returned %d binds, want 2", len(got))
	}
	if got[0].OID.String() != "1.3.6.1.4.1.2.1.1" || got[1].OID.String() != "1.3.6.1.4.1.2.1.2" {
		t.Fatalf("walk order wrong: %v, %v", got[0].OID, got[1].OID)
	}
}

func TestWalkWholeMIBStopsAtEnd(t *testing.T) {
	f := newSNMPFixture(t, 0)
	var got []VarBind
	f.client.WalkPrefix(f.agent, MustOID("1.3"), func(vbs []VarBind, err error) {
		if err != nil {
			t.Errorf("walk error: %v", err)
		}
		got = vbs
	})
	f.sched.Run()
	if len(got) != 3 {
		t.Fatalf("walk returned %d binds, want 3", len(got))
	}
}

func TestWrongCommunityDropsSilently(t *testing.T) {
	f := newSNMPFixture(t, 0)
	sched := f.sched
	// A second client on the same adapter, wrong community, fresh port.
	cl := NewClient(f.client.ep, schedClock{sched}, "wrong", 40001)
	cl.Timeout = 100 * time.Millisecond
	cl.Retries = 1
	var gotErr error
	cl.Get(f.agent, MustOID("1.3.6.1.4.1.2.1.1"), func(_ Value, err error) { gotErr = err })
	sched.Run()
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want timeout (silent drop)", gotErr)
	}
}

func TestRetryRecoversFromLoss(t *testing.T) {
	f := newSNMPFixture(t, 0.45)
	f.client.Timeout = 50 * time.Millisecond
	f.client.Retries = 20
	okCount := 0
	for i := 0; i < 30; i++ {
		f.client.Get(f.agent, MustOID("1.3.6.1.4.1.2.1.1"), func(_ Value, err error) {
			if err == nil {
				okCount++
			}
		})
	}
	f.sched.Run()
	if okCount < 28 {
		t.Fatalf("only %d/30 requests survived 45%% loss with retries", okCount)
	}
}

func TestTimeoutWhenAgentUnreachable(t *testing.T) {
	f := newSNMPFixture(t, 0)
	f.client.Timeout = 50 * time.Millisecond
	f.client.Retries = 2
	var gotErr error
	// No agent at this address.
	f.client.Get(transport.Addr{IP: transport.MakeIP(10, 9, 0, 99), Port: 161},
		MustOID("1.3.6.1.4.1.2.1.1"), func(_ Value, err error) { gotErr = err })
	start := f.sched.Now()
	f.sched.Run()
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
	elapsed := f.sched.Now() - start
	if elapsed < 150*time.Millisecond {
		t.Fatalf("timed out after %v, want >= 3 attempts x 50ms", elapsed)
	}
}

func TestMapMIBUndefineAndUpdate(t *testing.T) {
	m := NewMapMIB()
	oid := MustOID("1.3.6.1.4.1.2.7.1")
	m.Define(oid, Integer(1), false)
	if err := m.Update(oid, Integer(2)); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get(oid); !v.Equal(Integer(2)) {
		t.Fatal("Update did not apply")
	}
	m.Undefine(oid)
	if _, err := m.Get(oid); !errors.Is(err, ErrNoSuchName) {
		t.Fatal("Undefine did not remove")
	}
	if err := m.Update(oid, Integer(3)); !errors.Is(err, ErrNoSuchName) {
		t.Fatal("Update on missing OID must fail")
	}
}

func TestMapMIBNextOrder(t *testing.T) {
	m := NewMapMIB()
	m.Define(MustOID("1.3.6.1.2"), Integer(2), false)
	m.Define(MustOID("1.3.6.1.1"), Integer(1), false)
	m.Define(MustOID("1.3.6.1.1.5"), Integer(15), false)
	oid, v, err := m.Next(MustOID("1.3.6.1.1"))
	if err != nil || oid.String() != "1.3.6.1.1.5" || !v.Equal(Integer(15)) {
		t.Fatalf("Next = %v %v %v", oid, v, err)
	}
	_, _, err = m.Next(MustOID("1.3.6.1.2"))
	if !errors.Is(err, ErrNoSuchName) {
		t.Fatalf("Next past end = %v, want ErrNoSuchName", err)
	}
}

func TestMapMIBWalk(t *testing.T) {
	m := NewMapMIB()
	m.Define(MustOID("1.3.1.1"), Integer(1), false)
	m.Define(MustOID("1.3.1.2"), Integer(2), false)
	m.Define(MustOID("1.3.2.1"), Integer(3), false)
	var seen []string
	m.Walk(MustOID("1.3.1"), func(oid OID, _ Value) { seen = append(seen, oid.String()) })
	if len(seen) != 2 || seen[0] != "1.3.1.1" || seen[1] != "1.3.1.2" {
		t.Fatalf("Walk saw %v", seen)
	}
}
