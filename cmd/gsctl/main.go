// Command gsctl is an interactive console for driving a simulated farm:
// build a farm, advance virtual time, inspect the discovered topology,
// inject faults, and trigger reconfigurations — a REPL version of the
// gsfarm scenario runner, useful for exploring protocol behaviour.
//
// Usage:
//
//	gsctl [-admin 2] [-domains acme:2:3,globex:2:3] [-uniform N[:adapters]] [-journal]
//
// Commands: help, run <seconds>, status, groups, events [n], kill <node>,
// restart <node>, killsw <switch>, restoresw <switch>, move <node> <domain>,
// fail <adapter> <recv|send|stop|ok>, verify, journal, metrics, quit.
// With -journal every node keeps a state journal; the journal command
// shows each node's replay position and who the warm standby is.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	gulfstream "repro"
)

func main() {
	var (
		admin    = flag.Int("admin", 2, "administrative nodes")
		domains  = flag.String("domains", "acme:2:3,globex:2:3", "domains as name:frontends:backends,...")
		uniform  = flag.String("uniform", "", "uniform nodes as N[:adaptersPerNode] (replaces -domains)")
		journals = flag.Bool("journal", false, "give every node a state journal (inspect with the journal command)")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	spec := gulfstream.Spec{Seed: *seed, AdminNodes: *admin, StartSkew: 2 * time.Second,
		RecordEvents: true, Journal: *journals}
	if *uniform != "" {
		parts := strings.SplitN(*uniform, ":", 2)
		n, err := strconv.Atoi(parts[0])
		if err != nil {
			fatalf("bad -uniform: %v", err)
		}
		spec.UniformNodes = n
		spec.UniformAdapters = 3
		if len(parts) == 2 {
			if spec.UniformAdapters, err = strconv.Atoi(parts[1]); err != nil {
				fatalf("bad -uniform: %v", err)
			}
		}
	} else {
		for _, d := range strings.Split(*domains, ",") {
			p := strings.Split(d, ":")
			if len(p) != 3 {
				fatalf("bad domain %q (want name:fe:be)", d)
			}
			fe, err1 := strconv.Atoi(p[1])
			be, err2 := strconv.Atoi(p[2])
			if err1 != nil || err2 != nil {
				fatalf("bad domain %q", d)
			}
			spec.Domains = append(spec.Domains, gulfstream.DomainSpec{Name: p[0], FrontEnds: fe, BackEnds: be})
		}
	}
	f, err := gulfstream.NewFarm(spec)
	if err != nil {
		fatalf("build: %v", err)
	}
	f.Start()
	fmt.Printf("farm built (%d nodes); daemons booting. type 'run 30' then 'groups'. 'help' lists commands.\n", len(f.Nodes))
	repl(f, os.Stdin, os.Stdout)
}

// repl drives the farm from a command stream; factored out of main so it
// can be tested with scripted input.
func repl(f *gulfstream.Farm, in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	eventCursor := 0
	for {
		fmt.Fprintf(out, "gsctl t=%v> ", f.Sched.Now().Truncate(time.Millisecond))
		if !sc.Scan() {
			return
		}
		args := strings.Fields(sc.Text())
		if len(args) == 0 {
			continue
		}
		switch args[0] {
		case "quit", "exit":
			return
		case "help":
			fmt.Fprintln(out, "run <s> | status | groups | events [n] | kill <node> | restart <node> |")
			fmt.Fprintln(out, "killsw <sw> | restoresw <sw> | move <node> <domain> | fail <adapter> <mode> |")
			fmt.Fprintln(out, "verify | journal | metrics | quit")
		case "run":
			secs := 10.0
			if len(args) > 1 {
				secs, _ = strconv.ParseFloat(args[1], 64)
			}
			f.RunFor(time.Duration(secs * float64(time.Second)))
			fmt.Fprintf(out, "advanced to t=%v\n", f.Sched.Now())
		case "status":
			c := f.ActiveCentral()
			if c == nil {
				fmt.Fprintln(out, "no active GulfStream Central yet")
				continue
			}
			fmt.Fprintf(out, "central active; %d groups; stable=%v\n", c.GroupCount(), c.Stable())
		case "groups":
			c := f.ActiveCentral()
			if c == nil {
				fmt.Fprintln(out, "no active central")
				continue
			}
			groups := c.Groups()
			leaders := make([]gulfstream.IP, 0, len(groups))
			for l := range groups {
				leaders = append(leaders, l)
			}
			sort.Slice(leaders, func(i, j int) bool { return leaders[i] < leaders[j] })
			for _, l := range leaders {
				seg, _ := f.SegmentOf(l)
				fmt.Fprintf(out, "  %v (%s): %v\n", l, seg, groups[l])
			}
		case "events":
			n := 20
			if len(args) > 1 {
				n, _ = strconv.Atoi(args[1])
			}
			log := f.Bus.Log()
			start := eventCursor
			if len(log)-start > n {
				start = len(log) - n
			}
			for _, e := range log[start:] {
				fmt.Fprintf(out, "  %v\n", e)
			}
			eventCursor = len(log)
		case "kill":
			do(out, len(args) == 2, func() error { return f.KillNode(args[1]) })
		case "restart":
			do(out, len(args) == 2, func() error { return f.RestartNode(args[1]) })
		case "killsw":
			do(out, len(args) == 2, func() error { return f.KillSwitch(args[1]) })
		case "restoresw":
			do(out, len(args) == 2, func() error { return f.RestoreSwitch(args[1]) })
		case "move":
			do(out, len(args) == 3, func() error {
				return f.MoveNodeToDomain(args[1], args[2], func(err error) {
					if err != nil {
						fmt.Fprintf(out, "move failed: %v\n", err)
					} else {
						fmt.Fprintln(out, "SNMP reconfiguration complete")
					}
				})
			})
		case "fail":
			do(out, len(args) == 3, func() error {
				ip, ok := gulfstream.ParseIP(args[1])
				if !ok {
					return fmt.Errorf("bad adapter %q", args[1])
				}
				modes := map[string]gulfstream.FailureMode{
					"recv": gulfstream.FailRecv, "send": gulfstream.FailSend,
					"stop": gulfstream.FailStop, "ok": gulfstream.Healthy,
				}
				m, ok := modes[args[2]]
				if !ok {
					return fmt.Errorf("bad mode %q", args[2])
				}
				return f.FailAdapter(ip, m)
			})
		case "verify":
			c := f.ActiveCentral()
			if c == nil {
				fmt.Fprintln(out, "no active central")
				continue
			}
			ms := c.Verify()
			if len(ms) == 0 {
				fmt.Fprintln(out, "verification: clean")
			}
			for _, m := range ms {
				fmt.Fprintf(out, "  %v\n", m)
			}
		case "journal":
			if len(f.Journals) == 0 {
				fmt.Fprintln(out, "no journals (start gsctl with -journal)")
				continue
			}
			names := make([]string, 0, len(f.Journals))
			for name := range f.Journals {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				j := f.Journals[name]
				role := ""
				if d := f.Daemons[name]; d != nil && d.Running() && d.HostingCentral() {
					role = "  <- hosts Central"
				} else if j.Loaded() {
					role = "  <- warm standby"
				}
				fmt.Fprintf(out, "  %-12s epoch %-3d seq %-5d groups %-3d loaded=%v%s\n",
					name, j.Epoch(), j.Seq(), len(j.State().Groups), j.Loaded(), role)
			}
		case "metrics":
			fmt.Fprint(out, f.Metrics.Summary())
		default:
			fmt.Fprintf(out, "unknown command %q (try help)\n", args[0])
		}
	}
}

func do(out io.Writer, ok bool, fn func() error) {
	if !ok {
		fmt.Fprintln(out, "wrong arguments (try help)")
		return
	}
	if err := fn(); err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gsctl: "+format+"\n", args...)
	os.Exit(2)
}
