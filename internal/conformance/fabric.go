package conformance

import "repro/internal/transport"

// Fabric is the substrate a conformance farm runs on: it boots real
// gsd processes, emulates the switched network between them, and
// exposes the fault and reconfiguration primitives the scenario suites
// drive. Both fabrics (loopback, netns) implement it, so suites are
// fabric-agnostic.
type Fabric interface {
	// Kind names the fabric ("loopback", "netns").
	Kind() string
	// Spec returns the farm description the fabric was built from.
	Spec() *FarmSpec
	// OnStart registers a hook called for every daemon incarnation the
	// fabric launches (the scraper tracks streams through it). Must be
	// set before Boot.
	OnStart(func(*Daemon))
	// Boot constructs the network substrate and starts every node.
	Boot() error
	// Close tears the farm down: graceful daemon stops, then substrate
	// cleanup. Returns the first daemon that failed to exit cleanly.
	Close() error

	// Live returns the running incarnation of a node.
	Live(node string) (*Daemon, bool)
	// LiveDaemons lists all running incarnations in spec order.
	LiveDaemons() []*Daemon

	// KillNode fail-stops a node's process (SIGKILL).
	KillNode(node string) error
	// RestartNode boots a fresh incarnation of a previously killed node.
	RestartNode(node string) error

	// FailAdapter puts one adapter into a netsim-style failure mode
	// ("healthy", "fail-stop", "fail-recv", "fail-send"), optionally
	// with partial loss rates.
	FailAdapter(ip transport.IP, mode string, lossIn, lossOut float64) error
	// RescopeAdapter re-plugs an adapter into another VLAN behind
	// Central's back — the surprise-move primitive. (Planned moves go
	// through Central, which reaches the same rewiring via the
	// harness-side SNMP switch agent.)
	RescopeAdapter(ip transport.IP, vlan int) error
	// VLANOf reports the adapter's current segment in fabric reality.
	VLANOf(ip transport.IP) int
}
