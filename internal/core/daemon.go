package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/amg"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// CentralHook is how a daemon hands control to a GulfStream Central
// implementation when its administrative adapter wins (or loses) the
// leadership of the administrative AMG. internal/central implements it.
type CentralHook interface {
	// Activate is called when this daemon becomes GulfStream Central,
	// with the administrative endpoint to serve from.
	Activate(admin transport.Endpoint)
	// Deactivate is called when leadership is lost.
	Deactivate()
	// HandleReport delivers one membership report (network or local).
	// src is the reporting daemon's administrative adapter address.
	HandleReport(src transport.Addr, r *wire.Report)
}

// JournalPeer is an optional extension of CentralHook for Centrals that
// replicate a state journal. The daemon routes journal-plane traffic
// (JournalAppend from the active, JournalAck from the standby) here,
// passing its administrative endpoint so an inactive standby — which was
// never Activated and has no endpoint of its own — can still reply.
type JournalPeer interface {
	HandleJournal(ep transport.Endpoint, src transport.Addr, msg wire.Message)
}

// Hooks are optional observation points for tests and experiments.
type Hooks struct {
	// Commit fires after an adapter installs a committed view.
	Commit func(adapter transport.IP, view amg.Membership)
	// Death fires when a leader declares a member dead (post-probe).
	Death func(leader, dead transport.IP)
	// Orphaned fires when a member gives up on its group.
	Orphaned func(adapter transport.IP)
	// Formed fires when an adapter ends its beacon phase as the highest
	// IP it heard, with the size of its formation attempt — the "initial
	// topology" of the paper's §4.1 loss analysis.
	Formed func(adapter transport.IP, members int)
	// Suspicion fires when this daemon's detector raises a suspicion
	// (after the loopback self-test, before verification).
	Suspicion func(reporter, suspect transport.IP, reason wire.SuspectReason)
}

// Daemon is the per-node GulfStream agent.
//
// Concurrency: a Daemon is event-driven and NOT safe for concurrent use.
// Whatever drives it — the deterministic simulator, or the UDP runtime's
// single event goroutine — must serialize all handler and timer callbacks.
type Daemon struct {
	cfg         Config
	node        string
	clock       transport.Clock
	rng         *rand.Rand
	incarnation uint32

	adapters []*adapterProto // in adapter-index order
	byIP     map[transport.IP]*adapterProto

	reporter *reporter
	central  CentralHook
	hooks    Hooks
	tracer   *trace.Recorder

	// centralIP is the current administrative AMG leader (0 if unknown).
	centralIP transport.IP
	hosting   bool

	nextToken uint64
	running   bool
}

// NewDaemon builds a daemon for a node owning the given endpoints, in
// index order (endpoint cfg.AdminIndex is the administrative adapter).
// The daemon is inert until Start.
func NewDaemon(cfg Config, node string, clock transport.Clock, rng *rand.Rand, endpoints []transport.Endpoint) (*Daemon, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("core: node %s has no adapters", node)
	}
	if int(cfg.AdminIndex) >= len(endpoints) {
		return nil, fmt.Errorf("core: AdminIndex %d out of range", cfg.AdminIndex)
	}
	d := &Daemon{
		cfg:   cfg,
		node:  node,
		clock: clock,
		rng:   rng,
		byIP:  make(map[transport.IP]*adapterProto),
	}
	for i, ep := range endpoints {
		p := newAdapterProto(d, ep, uint8(i))
		d.adapters = append(d.adapters, p)
		d.byIP[ep.LocalIP()] = p
	}
	d.reporter = newReporter(d)
	return d, nil
}

// Node returns the node's name.
func (d *Daemon) Node() string { return d.node }

// SetCentral installs the Central implementation this daemon hosts when
// elected. Must be called before Start.
func (d *Daemon) SetCentral(c CentralHook) { d.central = c }

// SetHooks installs observation hooks. Must be called before Start.
func (d *Daemon) SetHooks(h Hooks) { d.hooks = h }

// Clock exposes the daemon's time source.
func (d *Daemon) Clock() transport.Clock { return d.clock }

// Config returns the active configuration.
func (d *Daemon) Config() Config { return d.cfg }

// AdminIP returns the administrative adapter's address.
func (d *Daemon) AdminIP() transport.IP {
	return d.adapters[d.cfg.AdminIndex].self
}

// Start boots (or reboots after Crash) every adapter: handlers are bound
// and the beacon phase begins. Each restart bumps the incarnation.
func (d *Daemon) Start() {
	if d.running {
		return
	}
	d.running = true
	d.incarnation++
	d.centralIP = 0
	for _, p := range d.adapters {
		p.start()
	}
}

// Crash halts the daemon abruptly: all timers stop, all protocol state is
// dropped, handlers go deaf. The farm uses it for node-failure injection;
// Start revives the daemon with a fresh incarnation.
func (d *Daemon) Crash() {
	if !d.running {
		return
	}
	d.running = false
	for _, p := range d.adapters {
		p.shutdown()
	}
	d.reporter.reset()
	if d.hosting {
		d.hosting = false
		if d.central != nil {
			d.central.Deactivate()
		}
	}
}

// Running reports whether the daemon is live.
func (d *Daemon) Running() bool {
	return d.running
}

// View returns the committed membership of the adapter with address ip.
func (d *Daemon) View(ip transport.IP) (amg.Membership, bool) {
	p, ok := d.byIP[ip]
	if !ok {
		return amg.Membership{}, false
	}
	return p.view, p.state == stMember || p.state == stLeader
}

// Leading lists the adapters of this daemon currently leading an AMG.
func (d *Daemon) Leading() []transport.IP {
	var out []transport.IP
	for _, p := range d.adapters {
		if p.state == stLeader {
			out = append(out, p.self)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CentralIP returns the daemon's current notion of where GulfStream
// Central lives (the administrative AMG leader).
func (d *Daemon) CentralIP() transport.IP {
	return d.centralIP
}

// HostingCentral reports whether this daemon is GulfStream Central.
func (d *Daemon) HostingCentral() bool {
	return d.hosting
}

// DisableAdapter administratively disables one of this daemon's adapters
// (Central's conflict response). The adapter goes silent; its group will
// declare it dead.
func (d *Daemon) DisableAdapter(ip transport.IP) bool {
	p, ok := d.byIP[ip]
	if !ok {
		return false
	}
	p.disable()
	return true
}

// admin returns the administrative adapter's protocol state.
func (d *Daemon) admin() *adapterProto { return d.adapters[d.cfg.AdminIndex] }

// token issues a fresh 2PC token.
func (d *Daemon) token() uint64 {
	d.nextToken++
	return d.nextToken
}

// adminViewChanged reacts to commits on the administrative adapter: it
// tracks where Central lives and activates/deactivates a hosted Central.
func (d *Daemon) adminViewChanged() {
	adminProto := d.admin()
	newCentral := adminProto.view.Leader()
	if adminProto.state != stMember && adminProto.state != stLeader {
		newCentral = 0
	}
	if newCentral == d.centralIP {
		return
	}
	d.centralIP = newCentral
	shouldHost := newCentral == adminProto.self
	if shouldHost != d.hosting {
		d.hosting = shouldHost
		if d.central != nil {
			if shouldHost {
				d.central.Activate(adminProto.ep)
			} else {
				d.central.Deactivate()
			}
		}
	}
	// A new Central has no baseline: every group this daemon leads must
	// resend a full report.
	d.reporter.centralChanged()
}

// handleReportPlane routes PortReport traffic arriving on the admin
// adapter: reports go to a hosted Central, acks to the reporter.
func (d *Daemon) handleReportPlane(src, _ transport.Addr, payload []byte) {
	if !d.running {
		return
	}
	msg, err := wire.Decode(payload)
	if err != nil {
		return
	}
	switch m := msg.(type) {
	case *wire.Report:
		if d.hosting && d.central != nil {
			d.central.HandleReport(src, m)
		}
	case *wire.ReportAck:
		d.reporter.onAck(m.Seq)
	case *wire.ResyncRequest:
		// Central lost (or never had) its state: resend full reports for
		// every group we lead. Only honor the Central we believe in.
		if m.From == d.centralIP && d.centralIP != 0 {
			d.reporter.centralChanged()
		}
	}
}

// handleJournalPlane routes PortJournal traffic arriving on the admin
// adapter to a journal-capable Central (active or standing by).
func (d *Daemon) handleJournalPlane(src, _ transport.Addr, payload []byte) {
	if !d.running || d.central == nil {
		return
	}
	jp, ok := d.central.(JournalPeer)
	if !ok {
		return
	}
	msg, err := wire.Decode(payload)
	if err != nil {
		return
	}
	switch msg.(type) {
	case *wire.JournalAppend, *wire.JournalAck:
		jp.HandleJournal(d.admin().ep, src, msg)
	}
}
