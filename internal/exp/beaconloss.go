package exp

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/transport"
)

// BeaconLossOptions parameterizes the §4.1 loss analysis.
type BeaconLossOptions struct {
	Seed     int64
	Adapters int
	// LossRates to sweep.
	LossRates []float64
	// Tb and Tbi fix the number of beacons k = Tb/Tbi each adapter sends.
	Tb, Tbi time.Duration
	// Trials averages out the randomness per loss rate.
	Trials int
}

// DefaultBeaconLoss uses k = 5 beacons, matching Tb=5 s at 1 beacon/s.
func DefaultBeaconLoss() BeaconLossOptions {
	return BeaconLossOptions{
		Seed:      11,
		Adapters:  30,
		LossRates: []float64{0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.8, 0.9},
		Tb:        5 * time.Second,
		Tbi:       1 * time.Second,
		Trials:    5,
	}
}

// BeaconLoss measures the fraction of adapters missing from the initial
// topology (the group formed right after the beacon phase) as a function
// of the network loss rate p, against the paper's analytic p^k (§4.1:
// "the probability of losing k BEACON messages is p^k").
func BeaconLoss(o BeaconLossOptions) (*Table, error) {
	t := &Table{
		ID:      "E3/beaconloss",
		Title:   fmt.Sprintf("adapters missing from the initial topology (n=%d, k=%d beacons)", o.Adapters, int(o.Tb/o.Tbi)),
		Columns: []string{"loss p", "analytic p^k", "measured missing frac", "initial group size"},
	}
	k := float64(o.Tb / o.Tbi)
	for _, p := range o.LossRates {
		missingSum := 0.0
		sizeSum := 0
		for trial := 0; trial < o.Trials; trial++ {
			size, err := beaconLossTrial(o, p, o.Seed+int64(trial)*101)
			if err != nil {
				return nil, err
			}
			sizeSum += size
			missingSum += float64(o.Adapters-size) / float64(o.Adapters-1)
		}
		measured := missingSum / float64(o.Trials)
		analytic := math.Pow(p, k)
		t.AddRow(fmt.Sprintf("%.2f", p), fmt.Sprintf("%.4f", analytic),
			fmt.Sprintf("%.4f", measured), fmt.Sprintf("%.1f", float64(sizeSum)/float64(o.Trials)))
	}
	t.Note("missing fraction computed over the %d adapters the forming leader could have heard", o.Adapters-1)
	t.Note("an initial topology still forms in time under loss; missing adapters merge in later (paper §4.1)")
	return t, nil
}

// beaconLossTrial builds one single-segment farm and captures the size of
// the largest formation attempt at the end of the beacon phase — exactly
// the "initial topology" of the paper's analysis, before any 2PC loss
// effects.
func beaconLossTrial(o BeaconLossOptions, loss float64, seed int64) (int, error) {
	cfg := core.DefaultConfig()
	cfg.BeaconPhase = o.Tb
	cfg.BeaconInterval = o.Tbi
	f, err := farm.Build(farm.Spec{
		Seed:            seed,
		UniformNodes:    o.Adapters,
		UniformAdapters: 1, // admin adapter only: one segment
		Loss:            loss,
		Core:            cfg,
	})
	if err != nil {
		return 0, err
	}
	best := 0
	for _, d := range f.Daemons {
		d.SetHooks(core.Hooks{Formed: func(_ transport.IP, members int) {
			if members > best {
				best = members
			}
		}})
	}
	f.Start()
	f.RunFor(o.Tb + time.Second)
	return best, nil
}
