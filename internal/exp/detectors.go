package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/farm"
	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/wire"
)

// DetectorOptions parameterizes the §3 trade-off experiment.
type DetectorOptions struct {
	Seed     int64
	Adapters int
	// LossRates to sweep.
	LossRates []float64
	// Schemes to compare.
	Schemes []DetectorScheme
	// Window is how long each run observes after the injected failure.
	Window time.Duration
	// Interval is the heartbeat period Th.
	Interval time.Duration
}

// DetectorScheme is one detector configuration under test.
type DetectorScheme struct {
	Name      string
	Kind      detect.Kind
	Miss      int
	Consensus bool
}

// DefaultDetectors reproduces the paper's discussion: the one-strike
// unidirectional ring vs. higher sensitivity vs. the bidirectional ring
// with two-neighbor consensus.
func DefaultDetectors() DetectorOptions {
	return DetectorOptions{
		Seed:      21,
		Adapters:  32,
		LossRates: []float64{0, 0.05, 0.10, 0.20},
		Schemes: []DetectorScheme{
			{Name: "ring k=1 (one strike)", Kind: detect.Ring, Miss: 1},
			{Name: "ring k=3", Kind: detect.Ring, Miss: 3},
			{Name: "biring k=3 + consensus", Kind: detect.BiRing, Miss: 3, Consensus: true},
			{Name: "randping", Kind: detect.RandPing, Miss: 3},
		},
		Window:   120 * time.Second,
		Interval: 1 * time.Second,
	}
}

// DetectorResult is one cell's measurement.
type DetectorResult struct {
	DetectionLatency time.Duration // kill -> leader-confirmed death
	Detected         bool
	FalseSuspicions  int // suspicions raised against healthy members
	FalseKills       int // healthy members wrongly declared dead
}

// DetectorCell runs one (scheme, loss) experiment: a single-segment group
// settles, one member is killed, and we observe the leader's verified
// death declarations.
func DetectorCell(o DetectorOptions, s DetectorScheme, loss float64, seed int64) (DetectorResult, error) {
	cfg := core.DefaultConfig()
	cfg.BeaconPhase = 3 * time.Second
	cfg.Detector = s.Kind
	cfg.Consensus = s.Consensus
	cfg.DetectorParams.Interval = o.Interval
	cfg.DetectorParams.MissThreshold = s.Miss
	cfg.OrphanTimeout = 10 * o.Interval * time.Duration(s.Miss)
	f, err := farm.Build(farm.Spec{
		Seed:            seed,
		UniformNodes:    o.Adapters,
		UniformAdapters: 1,
		Loss:            loss,
		Core:            cfg,
	})
	if err != nil {
		return DetectorResult{}, err
	}
	var res DetectorResult
	var victim transport.IP
	var killedAt time.Duration
	for _, d := range f.Daemons {
		d.SetHooks(core.Hooks{
			// Detection = the group recommits without the victim (whether
			// the removal came from a verified death or a 2PC exclusion).
			Commit: func(_ transport.IP, view coreView) {
				if victim == 0 || res.Detected {
					return
				}
				if view.Size() >= 2 && !view.Contains(victim) {
					res.Detected = true
					res.DetectionLatency = f.Sched.Now() - killedAt
				}
			},
			Death: func(_, dead transport.IP) {
				if victim != 0 && dead != victim {
					res.FalseKills++
				}
			},
			Suspicion: func(_, suspect transport.IP, _ wire.SuspectReason) {
				if victim != 0 && suspect != victim {
					res.FalseSuspicions++
				}
			},
		})
	}
	f.Start()
	f.RunFor(cfg.BeaconPhase + 10*time.Second) // settle
	victimNode := fmt.Sprintf("node-%03d", o.Adapters/2)
	victim = f.Nodes[victimNode].Adapters[0]
	// Under loss the victim may have been falsely removed during settling
	// (and be busy rejoining); only a settled member makes a meaningful
	// detection measurement. "Settled" must hold from both sides: the
	// victim's own view AND an independent witness's view (the victim may
	// hold a stale view of a group that already dropped it).
	witnessNode := "node-000"
	witness := f.Nodes[witnessNode].Adapters[0]
	settled := func() bool {
		v, ok := f.Daemons[victimNode].View(victim)
		if !ok || v.Size() < o.Adapters/2 || !v.Contains(victim) {
			return false
		}
		w, ok := f.Daemons[witnessNode].View(witness)
		return ok && w.Contains(victim) && w.Equal(v)
	}
	for waited := time.Duration(0); !settled(); waited += time.Second {
		if waited > 2*time.Minute {
			return res, fmt.Errorf("exp: victim never settled into the group")
		}
		f.RunFor(time.Second)
	}
	killedAt = f.Sched.Now()
	if err := f.KillNode(victimNode); err != nil {
		return res, err
	}
	f.RunFor(o.Window)
	return res, nil
}

// Detectors reproduces the §3 trade-off table: detection latency and
// false-kill counts per scheme and loss rate.
func Detectors(o DetectorOptions) (*Table, error) {
	t := &Table{
		ID:      "E4/detector",
		Title:   fmt.Sprintf("failure-detector trade-off (one AMG of %d adapters, Th=%v, one injected failure)", o.Adapters, o.Interval),
		Columns: []string{"scheme", "loss", "detect latency(s)", "false suspicions", "false kills"},
	}
	for _, s := range o.Schemes {
		for _, loss := range o.LossRates {
			r, err := DetectorCell(o, s, loss, o.Seed)
			if err != nil {
				return nil, err
			}
			lat := "undetected"
			if r.Detected {
				lat = secs2(r.DetectionLatency)
			}
			t.AddRow(s.Name, fmt.Sprintf("%.0f%%", loss*100), lat,
				fmt.Sprintf("%d", r.FalseSuspicions), fmt.Sprintf("%d", r.FalseKills))
		}
	}
	t.Note("paper §3: 'one strike and you're out' is overly sensitive to congestion loss;")
	t.Note("higher sensitivity k and the two-neighbor consensus cut false reports, and the leader's")
	t.Note("verification probe keeps false *kills* near zero in all schemes")
	return t, nil
}

// HBLoadOptions parameterizes the §4.2 heartbeat-load experiment.
type HBLoadOptions struct {
	Seed       int64
	GroupSizes []int
	Kinds      []detect.Kind
	Interval   time.Duration
	Window     time.Duration
}

// DefaultHBLoad sweeps AMG sizes across every detector strategy.
func DefaultHBLoad() HBLoadOptions {
	return HBLoadOptions{
		Seed:       31,
		GroupSizes: []int{4, 8, 16, 32, 64, 128},
		Kinds:      []detect.Kind{detect.Ring, detect.BiRing, detect.Subgroup, detect.RandPing, detect.AllToAll},
		Interval:   1 * time.Second,
		Window:     60 * time.Second,
	}
}

// HBLoadCell measures steady-state heartbeat-plane messages per second on
// the segment for one (kind, size).
func HBLoadCell(o HBLoadOptions, kind detect.Kind, size int, seed int64) (float64, error) {
	cfg := core.DefaultConfig()
	cfg.BeaconPhase = 3 * time.Second
	cfg.Detector = kind
	cfg.Consensus = kind == detect.BiRing
	cfg.DetectorParams.Interval = o.Interval
	f, err := farm.Build(farm.Spec{
		Seed:            seed,
		UniformNodes:    size,
		UniformAdapters: 1,
		Core:            cfg,
	})
	if err != nil {
		return 0, err
	}
	f.Start()
	f.RunFor(cfg.BeaconPhase + 15*time.Second) // settle
	f.Metrics.Reset(f.Sched.Now())
	f.RunFor(o.Window)
	hb := f.Metrics.PlaneCounter(metrics.Plane(transport.PortHeartbeat))
	return f.Metrics.Rate(hb.Messages, f.Sched.Now()), nil
}

// HBLoad reproduces the scalability comparison: messages/second on the
// segment vs. AMG size, per detection scheme. Rings and randomized
// pinging stay linear; all-to-all (the HACMP-style baseline) is
// quadratic.
func HBLoad(o HBLoadOptions) (*Table, error) {
	t := &Table{
		ID:    "E5/hbload",
		Title: fmt.Sprintf("steady-state failure-detection load (msgs/s on segment, Th=%v)", o.Interval),
	}
	t.Columns = append(t.Columns, "group size")
	for _, k := range o.Kinds {
		t.Columns = append(t.Columns, k.String())
	}
	for _, size := range o.GroupSizes {
		row := []string{fmt.Sprintf("%d", size)}
		for _, k := range o.Kinds {
			rate, err := HBLoadCell(o, k, size, o.Seed)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", rate))
		}
		t.AddRow(row...)
	}
	t.Note("paper §4.2/§5: ring load is linear in members; HACMP-style all-to-all 'scales poorly';")
	t.Note("randomized pinging imposes 'a much lower load ... for similar detection time' (ref [9])")
	return t, nil
}
