// ScopedEndpoint emulates physical network segments on a single host.
//
// The protocol's only use of multicast is the well-known BeaconGroup
// (BEACON discovery and Central's resync pull); unicast always targets a
// concrete adapter. So "which segment is this adapter plugged into"
// reduces entirely to "which multicast group do its BEACONs reach":
// rewriting the group per endpoint puts every adapter sharing a scope
// group on one virtual segment, and Rescope is the loopback-fabric
// equivalent of an SNMP port-VLAN rewrite — the adapter keeps its
// address and sockets but its broadcast domain changes under it.
//
// The wrapper also injects adapter-level faults the way internal/netsim
// does for simulated adapters: fail-stop / fail-recv / fail-send modes
// and probabilistic loss per direction, applied at the socket boundary so
// the daemon above runs unmodified.
package transport

import (
	"fmt"
	"math/rand"
	"sync"
)

// Fault modes a ScopedEndpoint can emulate, mirroring
// internal/netsim.FailureMode's names.
const (
	FaultHealthy = "healthy"
	FaultStop    = "fail-stop"
	FaultRecv    = "fail-recv"
	FaultSend    = "fail-send"
)

// ScopedEndpoint wraps an Endpoint, rewriting every multicast group the
// protocol names to a per-segment scope group and applying fault filters.
// All methods are safe for concurrent use.
type ScopedEndpoint struct {
	inner Endpoint

	mu              sync.Mutex
	scope           IP            // current scope group (0 = pass groups through)
	joined          map[Addr]bool // (original group, port) memberships requested
	segments        map[IP]IP     // adapter -> scope group (nil: no unicast filtering)
	mode            string
	lossIn, lossOut float64
	rng             *rand.Rand
}

// NewScopedEndpoint wraps inner so that any multicast group is rewritten
// to scope (scope 0 passes groups through unchanged).
func NewScopedEndpoint(inner Endpoint, scope IP) *ScopedEndpoint {
	return &ScopedEndpoint{
		inner:  inner,
		scope:  scope,
		joined: make(map[Addr]bool),
		mode:   FaultHealthy,
		rng:    rand.New(rand.NewSource(int64(inner.LocalIP()) + 1)),
	}
}

// mapGroup rewrites a multicast group to the current scope. Caller holds mu.
func (s *ScopedEndpoint) mapGroup(group IP) IP {
	if s.scope != 0 && group.IsMulticast() {
		return s.scope
	}
	return group
}

// Scope returns the current scope group.
func (s *ScopedEndpoint) Scope() IP {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scope
}

// Rescope moves the endpoint to a new segment: every membership joined
// through this wrapper is left under the old scope and re-joined under
// the new one. The underlying endpoint must implement GroupLeaver for
// the leave half (UDPEndpoint does).
func (s *ScopedEndpoint) Rescope(scope IP) {
	s.mu.Lock()
	old := s.scope
	s.scope = scope
	memberships := make([]Addr, 0, len(s.joined))
	for a := range s.joined {
		memberships = append(memberships, a)
	}
	s.mu.Unlock()
	if old == scope {
		return
	}
	leaver, _ := s.inner.(GroupLeaver)
	for _, a := range memberships {
		oldGroup := a.IP
		if old != 0 && a.IP.IsMulticast() {
			oldGroup = old
		}
		if leaver != nil {
			leaver.LeaveGroup(oldGroup, a.Port)
		}
		newGroup := a.IP
		if scope != 0 && a.IP.IsMulticast() {
			newGroup = scope
		}
		s.inner.JoinGroup(newGroup, a.Port)
	}
}

// SetSegments installs the fabric's segment table: which scope group each
// adapter address currently belongs to. With a table installed, unicast to
// or from an adapter registered under a different scope than this
// endpoint's is dropped — on a real network those frames would die at the
// bridge, but on a single loopback interface every address reaches every
// other unless we filter. Addresses absent from the table (switch
// management agents, external tooling) always pass. The table must not be
// mutated after the call; install a fresh map to update it.
func (s *ScopedEndpoint) SetSegments(table map[IP]IP) {
	s.mu.Lock()
	s.segments = table
	s.mu.Unlock()
}

// crossSegment reports whether unicast traffic with peer must be dropped
// because the segment table places it on a different segment than ours.
func (s *ScopedEndpoint) crossSegment(peer IP) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.scope == 0 || s.segments == nil || peer.IsMulticast() {
		return false
	}
	want, ok := s.segments[peer]
	return ok && want != s.scope
}

// SetFault installs a failure mode and per-direction loss rates
// (probabilities in [0, 1]). Mode "" keeps the current mode.
func (s *ScopedEndpoint) SetFault(mode string, lossIn, lossOut float64) error {
	switch mode {
	case "", FaultHealthy, FaultStop, FaultRecv, FaultSend:
	default:
		return fmt.Errorf("transport: unknown fault mode %q", mode)
	}
	if lossIn < 0 || lossIn > 1 || lossOut < 0 || lossOut > 1 {
		return fmt.Errorf("transport: loss rates must be in [0,1]")
	}
	s.mu.Lock()
	if mode != "" {
		s.mode = mode
	}
	s.lossIn, s.lossOut = lossIn, lossOut
	s.mu.Unlock()
	return nil
}

// canSend / canRecv consult the fault state, consuming one loss draw.
func (s *ScopedEndpoint) canSend() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mode == FaultStop || s.mode == FaultSend {
		return false
	}
	return s.lossOut == 0 || s.rng.Float64() >= s.lossOut
}

func (s *ScopedEndpoint) canRecv() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mode == FaultStop || s.mode == FaultRecv {
		return false
	}
	return s.lossIn == 0 || s.rng.Float64() >= s.lossIn
}

// LocalIP implements Endpoint.
func (s *ScopedEndpoint) LocalIP() IP { return s.inner.LocalIP() }

// Unicast implements Endpoint. A multicast destination is rescoped; a
// faulted send direction silently drops (the point of the fault).
func (s *ScopedEndpoint) Unicast(srcPort uint16, dst Addr, payload []byte) error {
	if !s.canSend() {
		return nil
	}
	if s.crossSegment(dst.IP) {
		return nil
	}
	s.mu.Lock()
	dst.IP = s.mapGroup(dst.IP)
	s.mu.Unlock()
	return s.inner.Unicast(srcPort, dst, payload)
}

// Multicast implements Endpoint.
func (s *ScopedEndpoint) Multicast(srcPort uint16, group Addr, payload []byte) error {
	if !s.canSend() {
		return nil
	}
	s.mu.Lock()
	group.IP = s.mapGroup(group.IP)
	s.mu.Unlock()
	return s.inner.Multicast(srcPort, group, payload)
}

// Bind implements Endpoint, wrapping the handler with the receive-side
// fault filter.
func (s *ScopedEndpoint) Bind(port uint16, h Handler) {
	if h == nil {
		s.inner.Bind(port, nil)
		return
	}
	s.inner.Bind(port, func(src, dst Addr, payload []byte) {
		if !s.canRecv() {
			return
		}
		if s.crossSegment(src.IP) {
			return
		}
		h(src, dst, payload)
	})
}

// JoinGroup implements Endpoint: the membership is recorded under the
// protocol's group name and joined under the scope group.
func (s *ScopedEndpoint) JoinGroup(group IP, port uint16) {
	s.mu.Lock()
	s.joined[Addr{IP: group, Port: port}] = true
	mapped := s.mapGroup(group)
	s.mu.Unlock()
	s.inner.JoinGroup(mapped, port)
}

// Loopback implements Endpoint: the paper's self-test of the local
// send+receive path fails under any injected adapter fault (netsim's
// Adapter.Loopback has the same semantics).
func (s *ScopedEndpoint) Loopback() bool {
	s.mu.Lock()
	healthy := s.mode == FaultHealthy
	s.mu.Unlock()
	return healthy && s.inner.Loopback()
}

// Up implements Liveness: fail-stop is "administratively down".
func (s *ScopedEndpoint) Up() bool {
	s.mu.Lock()
	stopped := s.mode == FaultStop
	s.mu.Unlock()
	if stopped {
		return false
	}
	if l, ok := s.inner.(Liveness); ok {
		return l.Up()
	}
	return true
}
