package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.AfterFunc(3*time.Second, func() { got = append(got, 3) })
	s.AfterFunc(1*time.Second, func() { got = append(got, 1) })
	s.AfterFunc(2*time.Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s", s.Now())
	}
}

func TestSchedulerSimultaneousFIFO(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.AfterFunc(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events fired out of order: %v", got)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	var trace []time.Duration
	s.AfterFunc(time.Second, func() {
		trace = append(trace, s.Now())
		s.AfterFunc(time.Second, func() {
			trace = append(trace, s.Now())
		})
	})
	s.Run()
	if len(trace) != 2 || trace[0] != time.Second || trace[1] != 2*time.Second {
		t.Fatalf("trace = %v", trace)
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	tm := s.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop should return true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should return false")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := NewScheduler(1)
	tm := s.AfterFunc(0, func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire should return false")
	}
}

func TestStopInterleavedWithOtherEvents(t *testing.T) {
	s := NewScheduler(1)
	var fired []string
	var t2 *Timer
	s.AfterFunc(1*time.Second, func() {
		fired = append(fired, "a")
		t2.Stop()
	})
	t2 = s.AfterFunc(2*time.Second, func() { fired = append(fired, "b") })
	s.AfterFunc(3*time.Second, func() { fired = append(fired, "c") })
	s.Run()
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "c" {
		t.Fatalf("fired = %v, want [a c]", fired)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	s.AfterFunc(time.Second, func() { count++ })
	s.AfterFunc(10*time.Second, func() { count++ })
	s.RunUntil(5 * time.Second)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", s.Now())
	}
	s.RunFor(5 * time.Second)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestRunUntilInclusiveDeadline(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	s.AfterFunc(5*time.Second, func() { fired = true })
	s.RunUntil(5 * time.Second)
	if !fired {
		t.Fatal("event exactly at deadline did not fire")
	}
}

func TestNegativeDelayRunsNow(t *testing.T) {
	s := NewScheduler(1)
	s.RunFor(10 * time.Second)
	var at time.Duration = -1
	s.AfterFunc(-5*time.Second, func() { at = s.Now() })
	s.Run()
	if at != 10*time.Second {
		t.Fatalf("negative-delay event fired at %v, want 10s", at)
	}
}

func TestAtSchedulesAbsolute(t *testing.T) {
	s := NewScheduler(1)
	var at time.Duration
	s.At(7*time.Second, func() { at = s.Now() })
	s.Run()
	if at != 7*time.Second {
		t.Fatalf("At event fired at %v, want 7s", at)
	}
}

func TestHaltStopsRun(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.AfterFunc(time.Duration(i)*time.Second, func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	// Run again resumes.
	s.Run()
	if count != 10 {
		t.Fatalf("count after resume = %d, want 10", count)
	}
}

func TestRunWhile(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.AfterFunc(time.Duration(i)*time.Second, func() { count++ })
	}
	s.RunWhile(func() bool { return count < 4 })
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []time.Duration {
		s := NewScheduler(seed)
		var fires []time.Duration
		var schedule func()
		n := 0
		schedule = func() {
			if n >= 100 {
				return
			}
			n++
			d := time.Duration(s.Rand().Intn(1000)) * time.Millisecond
			s.AfterFunc(d, func() {
				fires = append(fires, s.Now())
				schedule()
			})
		}
		schedule()
		s.Run()
		return fires
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

// Property: events always fire in nondecreasing time order, regardless of
// insertion order.
func TestPropertyFiringOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler(1)
		var fires []time.Duration
		for _, d := range delays {
			s.AfterFunc(time.Duration(d)*time.Millisecond, func() {
				fires = append(fires, s.Now())
			})
		}
		s.Run()
		if len(fires) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fires, func(i, j int) bool { return fires[i] < fires[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Stop prevents exactly the stopped subset from firing.
func TestPropertyStopSubset(t *testing.T) {
	f := func(delays []uint8, stopMask []bool) bool {
		s := NewScheduler(1)
		fired := make([]bool, len(delays))
		timers := make([]*Timer, len(delays))
		for i, d := range delays {
			i := i
			timers[i] = s.AfterFunc(time.Duration(d)*time.Millisecond, func() { fired[i] = true })
		}
		stopped := make([]bool, len(delays))
		for i := range timers {
			if i < len(stopMask) && stopMask[i] {
				stopped[i] = timers[i].Stop()
				if !stopped[i] {
					return false // nothing fired yet, Stop must succeed
				}
			}
		}
		s.Run()
		for i := range delays {
			if fired[i] == stopped[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPendingAndFiredCounters(t *testing.T) {
	s := NewScheduler(1)
	for i := 0; i < 5; i++ {
		s.AfterFunc(time.Duration(i)*time.Second, func() {})
	}
	if s.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", s.Pending())
	}
	s.Run()
	if s.Fired() != 5 || s.Pending() != 0 {
		t.Fatalf("Fired = %d Pending = %d, want 5/0", s.Fired(), s.Pending())
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler(1)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AfterFunc(time.Duration(rng.Intn(1000))*time.Millisecond, func() {})
		s.Step()
	}
}

func BenchmarkSchedulerTimerStop(b *testing.B) {
	s := NewScheduler(1)
	for i := 0; i < b.N; i++ {
		tm := s.AfterFunc(time.Hour, func() {})
		tm.Stop()
	}
}
