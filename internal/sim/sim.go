// Package sim provides a deterministic discrete-event scheduler and a
// virtual clock. All GulfStream simulations run on top of this kernel:
// every daemon, switch and network link schedules its work as events on a
// single queue, so a run is exactly reproducible given a seed and executes
// thousands of simulated seconds per wall second.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. Events fire in (time, sequence) order;
// the sequence number makes simultaneous events deterministic (FIFO).
type event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	index int // heap index; -1 once popped or cancelled
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Scheduler is a single-threaded discrete-event executor with a virtual
// clock. It is not safe for concurrent use: all events run on the caller's
// goroutine, which is the point — determinism.
type Scheduler struct {
	now    time.Duration
	seq    uint64
	queue  eventQueue
	rng    *rand.Rand
	fired  uint64
	halted bool
}

// NewScheduler returns a scheduler whose clock starts at zero and whose
// random source is seeded with seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (duration since simulation start).
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic random source. All simulated
// components must draw randomness from here so runs replay exactly.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Fired reports how many events have executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending reports how many events are queued.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Timer is a handle to a scheduled event, with the same Stop contract as
// time.Timer: Stop reports whether the call prevented the event from firing.
type Timer struct {
	ev *event
	s  *Scheduler
}

// Stop cancels the timer. It returns false if the event already fired or
// was already stopped.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.index < 0 {
		return false
	}
	heap.Remove(&t.s.queue, t.ev.index)
	t.ev.index = -1
	t.ev.fn = nil
	return true
}

// AfterFunc schedules fn to run d from now. Negative d is treated as zero.
func (s *Scheduler) AfterFunc(d time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: AfterFunc with nil function")
	}
	if d < 0 {
		d = 0
	}
	ev := &event{at: s.now + d, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev, s: s}
}

// At schedules fn at absolute virtual time at. Times in the past run
// immediately (at the current instant).
func (s *Scheduler) At(at time.Duration, fn func()) *Timer {
	return s.AfterFunc(at-s.now, fn)
}

// Step executes the single earliest event. It reports false when the queue
// is empty.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*event)
	s.now = ev.at
	fn := ev.fn
	ev.fn = nil
	s.fired++
	if fn != nil {
		fn()
	}
	return true
}

// Run executes events until the queue is empty.
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled at exactly the deadline do run.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.halted = false
	for !s.halted && len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the simulation by d.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// RunWhile executes events while cond() is true and events remain. It is
// the primitive behind "run until the farm is stable" style loops; cond is
// evaluated before each event.
func (s *Scheduler) RunWhile(cond func() bool) {
	s.halted = false
	for !s.halted && len(s.queue) > 0 && cond() {
		s.Step()
	}
}

// Halt stops Run/RunUntil/RunWhile after the current event returns.
func (s *Scheduler) Halt() { s.halted = true }

// String describes the scheduler state, for debugging.
func (s *Scheduler) String() string {
	return fmt.Sprintf("sim.Scheduler{now=%v pending=%d fired=%d}", s.now, len(s.queue), s.fired)
}
