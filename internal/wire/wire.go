// Package wire defines the GulfStream on-the-wire protocol: every message
// the daemons, detectors and GulfStream Central exchange, with a compact
// versioned binary codec. The same bytes flow through the simulator and
// the real UDP transport.
package wire

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/transport"
)

// codecVersion is the first byte of every packet.
const codecVersion = 1

// Type identifies a message.
type Type byte

// Message types.
const (
	TBeacon Type = iota + 1
	TPrepare
	TPrepareAck
	TCommit
	TAbort
	TJoinRequest
	TMergeOffer
	THeartbeat
	TSuspect
	TProbe
	TProbeAck
	TPing
	TPingAck
	TPingReq
	TReport
	TReportAck
	TDisable
	TSubPoll
	TSubPollAck
	TEvict
	TResync
	TJournalAppend
	TJournalAck
	tMax
)

var typeNames = [...]string{
	TBeacon:        "beacon",
	TPrepare:       "prepare",
	TPrepareAck:    "prepare-ack",
	TCommit:        "commit",
	TAbort:         "abort",
	TJoinRequest:   "join-request",
	TMergeOffer:    "merge-offer",
	THeartbeat:     "heartbeat",
	TSuspect:       "suspect",
	TProbe:         "probe",
	TProbeAck:      "probe-ack",
	TPing:          "ping",
	TPingAck:       "ping-ack",
	TPingReq:       "ping-req",
	TReport:        "report",
	TReportAck:     "report-ack",
	TDisable:       "disable",
	TSubPoll:       "subpoll",
	TSubPollAck:    "subpoll-ack",
	TEvict:         "evict",
	TResync:        "resync",
	TJournalAppend: "journal-append",
	TJournalAck:    "journal-ack",
}

func (t Type) String() string {
	if int(t) < len(typeNames) && typeNames[t] != "" {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", byte(t))
}

// Errors returned by Decode.
var (
	ErrShort      = errors.New("wire: short packet")
	ErrBadVersion = errors.New("wire: unknown codec version")
	ErrBadType    = errors.New("wire: unknown message type")
	ErrTrailing   = errors.New("wire: trailing bytes")
)

// Message is implemented by every wire message.
type Message interface {
	// Type returns the message's wire type.
	Type() Type
	marshal(e *enc)
	unmarshal(d *dec)
}

// Member describes one adapter in an AMG membership list. The node name
// travels with every membership so GulfStream Central can correlate
// adapter state into node state without consulting the database.
type Member struct {
	IP    transport.IP
	Node  string
	Index uint8 // adapter index on its node; by convention 0 = administrative
	Admin bool  // adapter claims to be on the administrative VLAN
}

func (m Member) String() string {
	return fmt.Sprintf("%v(%s/%d)", m.IP, m.Node, m.Index)
}

// Beacon is multicast on the well-known group during discovery and, after
// group formation, by AMG leaders only.
type Beacon struct {
	Sender      transport.IP
	Node        string
	Incarnation uint32       // bumps each daemon restart; stale-message guard
	Leader      transport.IP // 0 while ungrouped; else the sender's AMG leader
	Version     uint64       // AMG membership version (0 while ungrouped)
	Members     uint32       // current AMG size, advisory
	Admin       bool         // sender is flagged as an administrative adapter
}

// Type implements Message.
func (*Beacon) Type() Type { return TBeacon }

// Op distinguishes why a 2PC membership change is happening (diagnostics
// and metrics; the protocol treats all the same).
type Op byte

// Membership-change operations.
const (
	OpForm Op = iota + 1
	OpJoin
	OpMerge
	OpRemove
)

func (o Op) String() string {
	switch o {
	case OpForm:
		return "form"
	case OpJoin:
		return "join"
	case OpMerge:
		return "merge"
	case OpRemove:
		return "remove"
	default:
		return fmt.Sprintf("Op(%d)", byte(o))
	}
}

// Prepare is phase one of the membership two-phase commit. The ordered
// member list doubles as the heartbeat ring layout and the leader
// succession order (paper §2.1, §3).
type Prepare struct {
	Leader  transport.IP
	Version uint64 // version this commit will establish
	Token   uint64 // ties acks/commits to one 2PC round
	Op      Op
	Members []Member // descending-IP order; Members[0] is the leader
}

// Type implements Message.
func (*Prepare) Type() Type { return TPrepare }

// PrepareAck is a member's vote.
type PrepareAck struct {
	From    transport.IP
	Leader  transport.IP
	Version uint64
	Token   uint64
	OK      bool
}

// Type implements Message.
func (*PrepareAck) Type() Type { return TPrepareAck }

// Commit finalizes a prepared membership. It repeats the member list so a
// member that missed the Prepare (or lost its pending state) can install
// the view directly — the leader also uses this as a unicast "view
// refresh" toward members it detects running a stale version.
type Commit struct {
	Leader  transport.IP
	Version uint64
	Token   uint64
	Members []Member
}

// Type implements Message.
func (*Commit) Type() Type { return TCommit }

// Abort cancels a prepared membership.
type Abort struct {
	Leader  transport.IP
	Version uint64
	Token   uint64
}

// Type implements Message.
func (*Abort) Type() Type { return TAbort }

// JoinRequest is sent by an ungrouped adapter directly to a known leader
// (it short-cuts waiting for the next leader beacon).
type JoinRequest struct {
	From        transport.IP
	Node        string
	Index       uint8
	Admin       bool
	Incarnation uint32
}

// Type implements Message.
func (*JoinRequest) Type() Type { return TJoinRequest }

// MergeOffer is sent by an AMG leader to a higher-IP AMG leader it heard
// beaconing on its segment; the higher leader absorbs the offered members
// (paper: "Merging AMGs are led by the AMG leader with the highest IP").
type MergeOffer struct {
	From    transport.IP
	Version uint64
	Members []Member
}

// Type implements Message.
func (*MergeOffer) Type() Type { return TMergeOffer }

// Heartbeat flows around the AMG ring. It carries the sender's view of
// its group identity (leader + version): versions are per-lineage, so the
// leader alone cannot expose a member stuck on a *different* group's view
// — receivers compare leaders too.
type Heartbeat struct {
	From    transport.IP
	Seq     uint64
	Version uint64       // sender's view of the membership version
	Leader  transport.IP // sender's view of its group leader
}

// Type implements Message.
func (*Heartbeat) Type() Type { return THeartbeat }

// SuspectReason explains a suspicion report.
type SuspectReason byte

// Suspicion reasons.
const (
	ReasonMissedHeartbeats SuspectReason = iota + 1
	ReasonProbeTimeout
	ReasonPingTimeout
	ReasonSubgroupDead
	// ReasonStaleView: the subject is alive but heartbeating under a
	// different group identity — it missed a commit and needs a refresh,
	// not a death verification.
	ReasonStaleView
)

func (r SuspectReason) String() string {
	switch r {
	case ReasonMissedHeartbeats:
		return "missed-heartbeats"
	case ReasonProbeTimeout:
		return "probe-timeout"
	case ReasonPingTimeout:
		return "ping-timeout"
	case ReasonSubgroupDead:
		return "subgroup-dead"
	case ReasonStaleView:
		return "stale-view"
	default:
		return fmt.Sprintf("SuspectReason(%d)", byte(r))
	}
}

// Suspect reports a possibly-failed member to the AMG leader.
type Suspect struct {
	Reporter transport.IP
	Suspect  transport.IP
	Version  uint64
	Reason   SuspectReason
}

// Type implements Message.
func (*Suspect) Type() Type { return TSuspect }

// Probe is the leader's direct are-you-alive check before it declares a
// suspected member dead.
type Probe struct {
	From  transport.IP
	Nonce uint64
}

// Type implements Message.
func (*Probe) Type() Type { return TProbe }

// ProbeAck answers a Probe. It carries the responder's current view of
// its own membership (leader + version): a probe verifies liveness, and
// this lets the prober additionally distinguish "alive in my group" from
// "alive but following another leader" — a member that moved on.
type ProbeAck struct {
	From    transport.IP
	Nonce   uint64
	Leader  transport.IP // responder's current AMG leader (0 if ungrouped)
	Version uint64
}

// Type implements Message.
func (*ProbeAck) Type() Type { return TProbeAck }

// Ping is the randomized-detector direct ping (paper §4.2, ref [9]). It
// carries the sender's group identity for the same stale-view detection
// as Heartbeat.
type Ping struct {
	From   transport.IP
	Nonce  uint64
	Leader transport.IP
}

// Type implements Message.
func (*Ping) Type() Type { return TPing }

// PingAck answers a Ping, possibly relayed via a PingReq proxy.
type PingAck struct {
	From   transport.IP // the pinged adapter
	Target transport.IP // original requester (for proxied acks)
	Nonce  uint64
}

// Type implements Message.
func (*PingAck) Type() Type { return TPingAck }

// PingReq asks a proxy to ping Target on the requester's behalf.
type PingReq struct {
	From   transport.IP
	Target transport.IP
	Nonce  uint64
}

// Type implements Message.
func (*PingReq) Type() Type { return TPingReq }

// Report carries an AMG membership delta from a group leader to
// GulfStream Central; deltas keep the steady state silent (paper §2.2).
// A report with Full=true carries the entire membership (sent on
// leadership change and on Central's resync request, i.e. whenever Central
// may have no baseline to apply deltas to).
type Report struct {
	Leader  transport.IP
	Segment string // leader's local hint (adapter index class), advisory
	Version uint64
	Seq     uint64 // per-leader sequence for ack/retransmit
	Full    bool
	// PrevLeader, on a full report, names the group this leadership term
	// supersedes: a successor that took over after verifying its leader's
	// death sets it so Central can mark the departed (typically the dead
	// leader) and rekey the group. Zero otherwise. PrevVersion carries the
	// superseded view's version, disambiguating the reference when the
	// same leader address has since started an unrelated group elsewhere
	// (group keys are leader IPs; lineages are told apart by version).
	PrevLeader  transport.IP
	PrevVersion uint64
	// Fresh, on a full report, marks a lineage break: the sender reformed
	// after total isolation (it was moved or partitioned away) and knows
	// nothing about its previous group's members. Central must not infer
	// departures from any earlier group under this key.
	Fresh   bool
	Members []Member // full membership when Full, else joined members
	Left    []transport.IP
}

// Type implements Message.
func (*Report) Type() Type { return TReport }

// ReportAck acknowledges a Report.
type ReportAck struct {
	From transport.IP
	Seq  uint64
}

// Type implements Message.
func (*ReportAck) Type() Type { return TReportAck }

// Disable orders a daemon to administratively disable one of its adapters
// (Central's response to a topology-verification conflict, paper §2.2).
type Disable struct {
	Target transport.IP
	Reason string
}

// Type implements Message.
func (*Disable) Type() Type { return TDisable }

// SubPoll is the leader's low-frequency liveness poll of a subgroup
// representative (paper §4.2's subgroup heartbeating scheme).
type SubPoll struct {
	From     transport.IP
	Subgroup uint32
	Nonce    uint64
}

// Type implements Message.
func (*SubPoll) Type() Type { return TSubPoll }

// SubPollAck answers a SubPoll with the subgroup's live count.
type SubPollAck struct {
	From     transport.IP
	Subgroup uint32
	Nonce    uint64
	Alive    uint32
}

// Type implements Message.
func (*SubPollAck) Type() Type { return TSubPollAck }

// Evict tells a straggler it is not a member of the sender's group: sent
// by a leader that keeps receiving heartbeat-plane traffic from an
// adapter outside its committed view (a member it dropped while the
// member was unreachable). The evicted adapter abandons its stale view
// and rediscovers the segment, healing the split.
type Evict struct {
	Leader  transport.IP
	Target  transport.IP
	Version uint64 // the leader's current view version
}

// Type implements Message.
func (*Evict) Type() Type { return TEvict }

// ResyncRequest asks daemons to resend full membership reports for every
// group they lead. A (re)activated GulfStream Central multicasts it on
// the administrative segment: the steady state is deliberately silent, so
// a Central that lost its state (fast restart, failover the daemons never
// noticed) must *pull* — it cannot wait for traffic that will never come.
type ResyncRequest struct {
	From transport.IP
}

// Type implements Message.
func (*ResyncRequest) Type() Type { return TResync }

// JournalAppend streams one state-journal record from the active
// GulfStream Central to its warm standby (the next-in-line administrative
// adapter). Payload is an internal/journal-encoded record; Epoch and Seq
// repeat the record's position so the receiver can order and ack without
// decoding. The stream makes failover O(delta): the standby replays its
// journal instead of multicast-pulling every group's full report.
type JournalAppend struct {
	From    transport.IP
	Epoch   uint64
	Seq     uint64
	Payload []byte
}

// Type implements Message.
func (*JournalAppend) Type() Type { return TJournalAppend }

// JournalAck is the standby's cumulative acknowledgement: every record up
// to and including Seq has been applied to its local journal. The active
// Central retransmits from Seq+1 (or restarts with a snapshot record when
// the standby has fallen behind its retained window).
type JournalAck struct {
	From  transport.IP
	Epoch uint64
	Seq   uint64
}

// Type implements Message.
func (*JournalAck) Type() Type { return TJournalAck }

// newByType allocates the zero message for a wire type.
func newByType(t Type) Message {
	switch t {
	case TBeacon:
		return &Beacon{}
	case TPrepare:
		return &Prepare{}
	case TPrepareAck:
		return &PrepareAck{}
	case TCommit:
		return &Commit{}
	case TAbort:
		return &Abort{}
	case TJoinRequest:
		return &JoinRequest{}
	case TMergeOffer:
		return &MergeOffer{}
	case THeartbeat:
		return &Heartbeat{}
	case TSuspect:
		return &Suspect{}
	case TProbe:
		return &Probe{}
	case TProbeAck:
		return &ProbeAck{}
	case TPing:
		return &Ping{}
	case TPingAck:
		return &PingAck{}
	case TPingReq:
		return &PingReq{}
	case TReport:
		return &Report{}
	case TReportAck:
		return &ReportAck{}
	case TDisable:
		return &Disable{}
	case TSubPoll:
		return &SubPoll{}
	case TSubPollAck:
		return &SubPollAck{}
	case TEvict:
		return &Evict{}
	case TResync:
		return &ResyncRequest{}
	case TJournalAppend:
		return &JournalAppend{}
	case TJournalAck:
		return &JournalAck{}
	default:
		return nil
	}
}

// Encode serializes a message, prefixed with version and type bytes.
func Encode(m Message) []byte {
	return AppendEncode(make([]byte, 0, 64), m)
}

// encPool recycles encoder state so the append-style API allocates
// nothing beyond what dst itself needs.
var encPool = sync.Pool{New: func() any { return new(enc) }}

// AppendEncode appends m's wire encoding to dst and returns the extended
// slice. With a dst of sufficient capacity the call performs zero
// allocations.
func AppendEncode(dst []byte, m Message) []byte {
	e := encPool.Get().(*enc)
	e.buf = append(dst, codecVersion, byte(m.Type()))
	m.marshal(e)
	out := e.buf
	e.buf = nil
	encPool.Put(e)
	return out
}

// Packet is a pooled encode buffer — the zero-allocation send path for
// the hot planes (beacons, heartbeats, 2PC). The bytes stay valid until
// Free. The intended shape, leaning on the transport contract that sends
// do not retain the payload (see transport.Endpoint):
//
//	pkt := wire.NewPacket(m)
//	_ = ep.Unicast(port, dst, pkt.Bytes())
//	pkt.Free()
type Packet struct {
	e enc
}

var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// NewPacket encodes m into a pooled buffer. Callers must Free the packet
// once the send (or fan-out of sends) sharing its bytes has returned.
func NewPacket(m Message) *Packet {
	p := packetPool.Get().(*Packet)
	p.e.buf = append(p.e.buf[:0], codecVersion, byte(m.Type()))
	m.marshal(&p.e)
	return p
}

// Bytes returns the encoded packet, valid until Free.
func (p *Packet) Bytes() []byte { return p.e.buf }

// Free returns the packet to the pool. The slice returned by Bytes must
// not be used afterwards.
func (p *Packet) Free() { packetPool.Put(p) }

// decPool recycles decoder state. Each pooled decoder keeps its string
// intern table across packets, so node names — the only strings on the
// hot planes — decode to shared copies instead of fresh allocations.
var decPool = sync.Pool{New: func() any { return &dec{intern: make(map[string]string)} }}

// decodeBody unmarshals pkt's body into m using a pooled decoder.
func decodeBody(pkt []byte, m Message) error {
	d := decPool.Get().(*dec)
	d.buf, d.pos, d.err = pkt, 2, nil
	m.unmarshal(d)
	err := d.err
	if err == nil && d.pos != len(pkt) {
		err = ErrTrailing
	}
	d.buf = nil
	decPool.Put(d)
	return err
}

// Decode parses one packet. All trailing garbage is rejected.
func Decode(pkt []byte) (Message, error) {
	if len(pkt) < 2 {
		return nil, ErrShort
	}
	if pkt[0] != codecVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, pkt[0])
	}
	m := newByType(Type(pkt[1]))
	if m == nil {
		return nil, fmt.Errorf("%w: %d", ErrBadType, pkt[1])
	}
	if err := decodeBody(pkt, m); err != nil {
		return nil, err
	}
	return m, nil
}

// Peek returns a packet's message type without decoding its body, so a
// receiver can route the common case to DecodeInto with a reused message.
func Peek(pkt []byte) (Type, bool) {
	if len(pkt) < 2 || pkt[0] != codecVersion {
		return 0, false
	}
	t := Type(pkt[1])
	if t == 0 || t >= tMax {
		return 0, false
	}
	return t, true
}

// DecodeInto parses pkt into the caller's message, which must match the
// packet's wire type. Unlike Decode it allocates nothing for fixed-size
// messages, so hot receive paths (beacons, heartbeats) can decode into a
// long-lived scratch value. On error the message contents are undefined.
func DecodeInto(pkt []byte, m Message) error {
	if len(pkt) < 2 {
		return ErrShort
	}
	if pkt[0] != codecVersion {
		return fmt.Errorf("%w: %d", ErrBadVersion, pkt[0])
	}
	if Type(pkt[1]) != m.Type() {
		return fmt.Errorf("%w: got %d, want %v", ErrBadType, pkt[1], m.Type())
	}
	if b, ok := m.(*Beacon); ok {
		return decodeBeacon(pkt, b)
	}
	return decodeBody(pkt, m)
}

// beaconFixed is the byte count of a beacon packet around its node name:
// header (2) + sender (4) + name length (2) + incarnation (4) +
// leader (4) + version (8) + members (4) + admin (1).
const beaconFixed = 29

// decodeBeacon is the unrolled decoder for the highest-rate message on
// the wire: during discovery every adapter hears every segment-mate's
// beacon each interval, so this path does one length check and straight
// loads instead of seven sticky-error field reads through the generic
// decoder. The pooled decoder is still borrowed for its intern table.
func decodeBeacon(pkt []byte, b *Beacon) error {
	if len(pkt) < beaconFixed {
		return ErrShort
	}
	n := int(pkt[6])<<8 | int(pkt[7])
	if len(pkt) != beaconFixed+n {
		if len(pkt) < beaconFixed+n {
			return ErrShort
		}
		return ErrTrailing
	}
	b.Sender = transport.IP(be32(pkt[2:]))
	d := decPool.Get().(*dec)
	b.Node = d.internBytes(pkt[8 : 8+n])
	decPool.Put(d)
	p := 8 + n
	b.Incarnation = be32(pkt[p:])
	b.Leader = transport.IP(be32(pkt[p+4:]))
	b.Version = be64(pkt[p+8:])
	b.Members = be32(pkt[p+16:])
	b.Admin = pkt[p+20] != 0
	return nil
}

func be32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func be64(b []byte) uint64 {
	return uint64(be32(b))<<32 | uint64(be32(b[4:]))
}
