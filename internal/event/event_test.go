package event

import (
	"strings"
	"testing"
	"time"

	"repro/internal/transport"
)

func TestBusDeliversInOrder(t *testing.T) {
	b := NewBus(false)
	var got []Kind
	b.Subscribe(func(e Event) { got = append(got, e.Kind) })
	b.Subscribe(func(e Event) { got = append(got, e.Kind) })
	b.Publish(Event{Kind: AdapterFailed})
	b.Publish(Event{Kind: NodeFailed})
	want := []Kind{AdapterFailed, AdapterFailed, NodeFailed, NodeFailed}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestBusReentrantPublishCanonicalOrder pins the delivery-order
// guarantee the serving plane depends on: when a subscriber publishes
// while handling an event, every subscriber — early or late in the
// subscription list — still observes the identical global order, and
// that order matches the recorded log.
func TestBusReentrantPublishCanonicalOrder(t *testing.T) {
	b := NewBus(true)
	var first, second []Kind
	b.Subscribe(func(e Event) {
		first = append(first, e.Kind)
		// Handling the failure triggers two follow-on publishes — the
		// interleaving pattern Central's correlation paths produce.
		if e.Kind == AdapterFailed {
			b.Publish(Event{Kind: NodeFailed})
			b.Publish(Event{Kind: SwitchFailed})
		}
	})
	b.Subscribe(func(e Event) { second = append(second, e.Kind) })

	b.Publish(Event{Kind: AdapterFailed})
	b.Publish(Event{Kind: NodeMoved})

	want := []Kind{AdapterFailed, NodeFailed, SwitchFailed, NodeMoved}
	check := func(name string, got []Kind) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s observed %v, want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s observed %v, want %v", name, got, want)
			}
		}
	}
	check("first subscriber", first)
	check("second subscriber", second)
	log := b.Log()
	var logged []Kind
	for _, e := range log {
		logged = append(logged, e.Kind)
	}
	check("recorded log", logged)
}

// TestBusNestedReentrantPublish exercises two levels of nesting: a
// republish from handling a republished event still lands in global
// FIFO order.
func TestBusNestedReentrantPublish(t *testing.T) {
	b := NewBus(false)
	var got []Kind
	b.Subscribe(func(e Event) {
		got = append(got, e.Kind)
		switch e.Kind {
		case AdapterFailed:
			b.Publish(Event{Kind: NodeFailed})
		case NodeFailed:
			b.Publish(Event{Kind: NodeRecovered})
		}
	})
	b.Publish(Event{Kind: AdapterFailed})
	b.Publish(Event{Kind: GroupFormed})
	want := []Kind{AdapterFailed, NodeFailed, NodeRecovered, GroupFormed}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestBusRecording(t *testing.T) {
	b := NewBus(true)
	b.Publish(Event{Kind: AdapterFailed})
	b.Publish(Event{Kind: NodeMoved})
	b.Publish(Event{Kind: AdapterFailed})
	if len(b.Log()) != 3 {
		t.Fatalf("log = %d", len(b.Log()))
	}
	if b.Count(AdapterFailed) != 2 || b.Count(NodeMoved) != 1 || b.Count(SwitchFailed) != 0 {
		t.Fatal("Count wrong")
	}
	if len(b.Filter(NodeMoved)) != 1 {
		t.Fatal("Filter wrong")
	}
	nb := NewBus(false)
	nb.Publish(Event{Kind: NodeMoved})
	if nb.Log() != nil {
		t.Fatal("non-recording bus kept a log")
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		Time:       3 * time.Second,
		Kind:       NodeMoved,
		Adapter:    transport.MakeIP(10, 0, 0, 5),
		Node:       "web-05",
		Group:      transport.MakeIP(10, 0, 0, 9),
		Detail:     "vlan 100 -> 200",
		Suppressed: true,
	}
	s := e.String()
	for _, frag := range []string{"node-moved", "10.0.0.5", "web-05", "10.0.0.9", "vlan 100 -> 200", "[suppressed]"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestKindStringsDistinct(t *testing.T) {
	seen := map[string]Kind{}
	for k := AdapterFailed; k <= MoveStarted; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("Kind(%d) has no name", k)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share name %q", prev, k, s)
		}
		seen[s] = k
	}
}
