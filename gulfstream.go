package gulfstream

import (
	"time"

	"repro/internal/amg"
	"repro/internal/central"
	"repro/internal/configdb"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/event"
	"repro/internal/farm"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/serve"
	"repro/internal/span"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Core types, aliased from the implementation packages so that the whole
// public surface lives here.
type (
	// Farm is a complete simulated multi-domain server farm: switches,
	// VLAN segments, a configuration database, and a GulfStream daemon
	// per node. Build one with NewFarm.
	Farm = farm.Farm
	// Spec describes the farm to build.
	Spec = farm.Spec
	// DomainSpec describes one hosted customer domain.
	DomainSpec = farm.DomainSpec
	// NodeInfo describes one built node.
	NodeInfo = farm.NodeInfo

	// Config carries the daemon protocol parameters (Tb, Ts, heartbeat
	// interval, detector selection, ...).
	Config = core.Config
	// CentralConfig carries GulfStream Central's parameters (Tgsc, the
	// move window, SNMP community, ...).
	CentralConfig = central.Config
	// DetectorParams tunes a failure detector.
	DetectorParams = detect.Params
	// DetectorKind selects a failure-detection strategy.
	DetectorKind = detect.Kind

	// Daemon is the per-node GulfStream agent.
	Daemon = core.Daemon
	// Central is the farm-view authority at the root of the reporting
	// hierarchy.
	Central = central.Central
	// Membership is one committed AMG view: IP-ordered members, with the
	// leader first and ring neighbors adjacent.
	Membership = amg.Membership

	// Event is a published notification (failures, recoveries, moves,
	// verification findings).
	Event = event.Event
	// EventKind classifies events.
	EventKind = event.Kind
	// EventBus fans events out to subscribers.
	EventBus = event.Bus

	// IP is an IPv4 address in host order; adapter identity and leader
	// election order.
	IP = transport.IP

	// ConfigDB is the expected-topology database.
	ConfigDB = configdb.DB
	// AdapterSpec is an expected adapter record.
	AdapterSpec = configdb.AdapterSpec
	// Mismatch is one verification finding.
	Mismatch = configdb.Mismatch

	// FailureMode enumerates adapter failure modes for fault injection.
	FailureMode = netsim.FailureMode

	// TraceRecorder is the bounded protocol flight recorder capturing
	// every protocol state transition (see Farm.Trace and Spec.Trace).
	TraceRecorder = trace.Recorder
	// TraceRecord is one captured protocol state transition.
	TraceRecord = trace.Record
	// TraceKind classifies trace records.
	TraceKind = trace.Kind
	// Txn is the correlated timeline of one 2PC membership transaction.
	Txn = trace.Txn
	// MetricsRegistry aggregates traffic counters and named instruments
	// (counters, gauges, histograms) fed by the flight recorder.
	MetricsRegistry = metrics.Registry

	// Clock abstracts time for protocol and serving-plane code; a farm's
	// virtual clock comes from Farm.Clock().
	Clock = transport.Clock

	// ServeConfig tunes the serving plane's workload and balancer
	// (arrival rates, session shape, tick).
	ServeConfig = serve.Config
	// ServePlane is an assembled serving plane: balancer, workload, and
	// notification pipe. Build one with Farm.AttachServe.
	ServePlane = serve.Plane
	// ServeBalancer routes domain traffic using only what the
	// notification pipe delivered.
	ServeBalancer = serve.Balancer
	// ServeWorkload drives the simulated client population.
	ServeWorkload = serve.Workload
	// ServeDomainStats is one domain's accumulated serving outcome
	// (requests, errors, error-seconds).
	ServeDomainStats = serve.DomainStats
	// ServePipe models the notification channel between Central's event
	// bus and a balancer.
	ServePipe = serve.Pipe

	// Span is one stitched end-to-end incident timeline: fault →
	// detection → 2PC → report → notification → reroute → first clean
	// request, assembled from flight-recorder records.
	Span = span.Span
	// SpanMilestone is one timestamped stage of a span.
	SpanMilestone = span.Milestone
	// SpanStage labels a milestone (suspicion, verdict, 2pc-prepare, ...).
	SpanStage = span.Stage
	// SpanCollector merges flight-recorder streams from many nodes into
	// one deterministic sim-time order for the stitcher.
	SpanCollector = span.Collector
	// SpanTopology is what the stitcher needs to know about the farm:
	// which adapters belong to which node. *Farm implements it.
	SpanTopology = span.Topology
)

// Detector kinds.
const (
	DetectorRing     = detect.Ring
	DetectorBiRing   = detect.BiRing
	DetectorAllToAll = detect.AllToAll
	DetectorRandPing = detect.RandPing
	DetectorSubgroup = detect.Subgroup
)

// Adapter failure modes for Farm.FailAdapter.
const (
	Healthy  = netsim.Healthy
	FailStop = netsim.FailStop
	FailRecv = netsim.FailRecv
	FailSend = netsim.FailSend
)

// Event kinds.
const (
	AdapterFailed    = event.AdapterFailed
	AdapterRecovered = event.AdapterRecovered
	AdapterJoined    = event.AdapterJoined
	NodeFailed       = event.NodeFailed
	NodeRecovered    = event.NodeRecovered
	SwitchFailed     = event.SwitchFailed
	SwitchRecovered  = event.SwitchRecovered
	NodeMoved        = event.NodeMoved
	GroupFormed      = event.GroupFormed
	GroupChanged     = event.GroupChanged
	LeaderChanged    = event.LeaderChanged
	CentralElected   = event.CentralElected
	VerifyMismatch   = event.VerifyMismatch
	AdapterDisabled  = event.AdapterDisabled
	MoveStarted      = event.MoveStarted
)

// AdminVLAN is the administrative domain's VLAN id in built farms.
const AdminVLAN = farm.AdminVLAN

// NewFarm builds the farm described by spec. Zero-valued Config and
// CentralConfig fields fall back to the paper's defaults.
func NewFarm(spec Spec) (*Farm, error) { return farm.Build(spec) }

// DefaultConfig returns the daemon parameters of the paper's prototype
// (Tb=5s, Ts=5s, 1s bidirectional-ring heartbeats with two-neighbor
// consensus, ...).
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultCentralConfig returns GulfStream Central's prototype parameters
// (Tgsc=15s, ...).
func DefaultCentralConfig() CentralConfig { return central.DefaultConfig() }

// DefaultDetectorParams returns the detector tuning used by the paper's
// experiments.
func DefaultDetectorParams() DetectorParams { return detect.Defaults() }

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (IP, bool) { return transport.ParseIP(s) }

// TraceTxns groups a trace dump's 2PC records by transaction id
// (leader#token), ordered by each transaction's first capture.
func TraceTxns(records []TraceRecord) []Txn { return trace.Txns(records) }

// StitchSpans assembles end-to-end incident spans from a trace dump —
// one per Central incident id plus one per leader takeover. Records
// must be in capture order (Collector.Records or Recorder.Snapshot).
func StitchSpans(records []TraceRecord, topo SpanTopology) []*Span {
	return span.Stitch(records, topo)
}

// AuditSpans re-stitches the dump and returns one finding per
// incompletely-closed or non-causal span (empty on a healthy farm).
func AuditSpans(records []TraceRecord, topo SpanTopology) []string {
	return span.Audit(records, topo)
}

// NewSpanCollector returns a collector with the default record filter
// (beacon chatter excluded).
func NewSpanCollector() *SpanCollector { return span.NewCollector(nil) }

// ObserveSpans feeds every span's per-stage durations into the
// registry's span_stage_* histograms (and span_total for complete
// spans).
func ObserveSpans(reg *MetricsRegistry, spans []*Span) { span.Observe(reg, spans) }

// MakeIP builds an IP from dotted-quad components.
func MakeIP(a, b, c, d byte) IP { return transport.MakeIP(a, b, c, d) }

// ParseDetector maps a detector name ("ring", "biring", "all-to-all",
// "randping", "subgroup") to its kind.
func ParseDetector(name string) (DetectorKind, error) { return detect.ParseKind(name) }

// NewDirectPipe returns the zero-latency notification pipe: the
// balancer shares Central's view instantly.
func NewDirectPipe() ServePipe { return serve.NewDirectPipe() }

// NewDelayedPipe returns a notification pipe that delivers every event a
// fixed delay after publication — a balancer replica notified over a
// unicast channel with that one-way latency.
func NewDelayedPipe(clock Clock, delay time.Duration) ServePipe {
	return serve.NewDelayedPipe(clock, delay)
}

// FrontVLAN returns the VLAN id of domain i's front-end segment in built
// farms; BackVLAN its back-end segment.
func FrontVLAN(i int) int { return farm.FrontVLAN(i) }

// BackVLAN returns the VLAN id of domain i's back-end segment.
func BackVLAN(i int) int { return farm.BackVLAN(i) }

// Version identifies this reproduction.
const Version = "1.0.0"

// Stabilization is a convenience describing the paper's Formula (1):
// the time for GulfStream Central to form a stable view of the topology.
func Stabilization(tb, ts, tgsc time.Duration) time.Duration { return tb + ts + tgsc }
