package exp

import (
	"fmt"
	"time"

	"repro/internal/central"
	"repro/internal/core"
	"repro/internal/farm"
)

// Fig5Options parameterizes the Figure 5 reproduction.
type Fig5Options struct {
	Seed int64
	// NodeCounts are the farm sizes to sweep; each node has AdaptersPerNode
	// adapters, so the x-axis value is NodeCounts[i] * AdaptersPerNode.
	NodeCounts      []int
	AdaptersPerNode int
	// BeaconPhases are the Tb values (the paper uses 5, 10, 20 s).
	BeaconPhases []time.Duration
	// StableWait is Ts (5 s in the paper); StabilizeWait is Tgsc (15 s).
	StableWait    time.Duration
	StabilizeWait time.Duration
	// StartSkew models the daemon boot stagger contributing to δ.
	StartSkew time.Duration
	// Timeout bounds each run.
	Timeout time.Duration
}

// DefaultFig5 mirrors the paper's experiment: Tb ∈ {5,10,20} s, Ts = 5 s,
// Tgsc = 15 s, three adapters per node, farm sizes up to the 55-node
// testbed (165 adapters).
func DefaultFig5() Fig5Options {
	return Fig5Options{
		Seed:            1,
		NodeCounts:      []int{2, 5, 10, 20, 30, 40, 55},
		AdaptersPerNode: 3,
		BeaconPhases:    []time.Duration{5 * time.Second, 10 * time.Second, 20 * time.Second},
		StableWait:      5 * time.Second,
		StabilizeWait:   15 * time.Second,
		StartSkew:       2 * time.Second,
		Timeout:         5 * time.Minute,
	}
}

// fig5Farm builds the uniform testbed farm for one (n, Tb) cell.
func fig5Farm(o Fig5Options, nodes int, tb time.Duration, seed int64) (*farm.Farm, error) {
	cfg := core.DefaultConfig()
	cfg.BeaconPhase = tb
	cfg.StableWait = o.StableWait
	cc := central.DefaultConfig()
	cc.StabilizeWait = o.StabilizeWait
	return farm.Build(farm.Spec{
		Seed:            seed,
		UniformNodes:    nodes,
		UniformAdapters: o.AdaptersPerNode,
		StartSkew:       o.StartSkew,
		Core:            cfg,
		Central:         cc,
	})
}

// Fig5Cell measures one data point: the time for all groups to become
// stable (Central's view quiet for Tgsc), from simulation start.
func Fig5Cell(o Fig5Options, nodes int, tb time.Duration, seed int64) (time.Duration, error) {
	f, err := fig5Farm(o, nodes, tb, seed)
	if err != nil {
		return 0, err
	}
	f.Start()
	at, ok := f.RunUntilStable(o.Timeout)
	if !ok {
		return 0, fmt.Errorf("exp: fig5 run (n=%d Tb=%v) never stabilized", nodes, tb)
	}
	return at, nil
}

// Fig5 reproduces Figure 5: time for all groups to become stable vs.
// number of adapters, one series per Tb. The paper's finding — constant
// in group size, equal to Tb+Ts+Tgsc plus a small δ — should hold.
func Fig5(o Fig5Options) (*Table, error) {
	t := &Table{
		ID:    "E1/fig5",
		Title: "time for all groups to become stable (s) vs number of adapters",
	}
	t.Columns = append(t.Columns, "adapters")
	for _, tb := range o.BeaconPhases {
		t.Columns = append(t.Columns, fmt.Sprintf("Tb=%ds", int(tb.Seconds())))
	}
	for _, tb := range o.BeaconPhases {
		t.Columns = append(t.Columns, fmt.Sprintf("δ(Tb=%ds)", int(tb.Seconds())))
	}
	var maxDelta time.Duration
	for _, n := range o.NodeCounts {
		row := []string{fmt.Sprintf("%d", n*o.AdaptersPerNode)}
		var deltas []string
		for _, tb := range o.BeaconPhases {
			got, err := Fig5Cell(o, n, tb, o.Seed+int64(n))
			if err != nil {
				return nil, err
			}
			predicted := tb + o.StableWait + o.StabilizeWait
			delta := got - predicted
			if delta > maxDelta {
				maxDelta = delta
			}
			row = append(row, secs(got))
			deltas = append(deltas, secs(delta))
		}
		row = append(row, deltas...)
		t.AddRow(row...)
	}
	t.Note("predicted T = Tb + Ts + Tgsc with Ts=%v, Tgsc=%v (paper formula 1)", o.StableWait, o.StabilizeWait)
	t.Note("paper: constant vs adapters, δ between 5 and 6 s (Java threads + start stagger); here δ <= %s s from StartSkew=%v + protocol costs", secs(maxDelta), o.StartSkew)
	return t, nil
}

// Formula1Options parameterizes the Formula (1) validation grid.
type Formula1Options struct {
	Seed            int64
	Nodes           int
	AdaptersPerNode int
	Grid            []Formula1Point
	StartSkew       time.Duration
	Timeout         time.Duration
}

// Formula1Point is one (Tb, Ts, Tgsc) parameter combination.
type Formula1Point struct {
	Tb, Ts, Tgsc time.Duration
}

// DefaultFormula1 sweeps the configurable parameters on the 55-node
// testbed shape.
func DefaultFormula1() Formula1Options {
	s := time.Second
	return Formula1Options{
		Seed:            7,
		Nodes:           55,
		AdaptersPerNode: 3,
		Grid: []Formula1Point{
			{5 * s, 5 * s, 15 * s},
			{10 * s, 5 * s, 15 * s},
			{20 * s, 5 * s, 15 * s},
			{5 * s, 10 * s, 15 * s},
			{5 * s, 5 * s, 30 * s},
			{10 * s, 10 * s, 30 * s},
		},
		StartSkew: 2 * time.Second,
		Timeout:   10 * time.Minute,
	}
}

// Formula1 validates T = Tb + Ts + Tgsc + δ across a parameter grid.
func Formula1(o Formula1Options) (*Table, error) {
	t := &Table{
		ID:      "E2/formula1",
		Title:   fmt.Sprintf("stabilization model vs measurement (%d nodes x %d adapters)", o.Nodes, o.AdaptersPerNode),
		Columns: []string{"Tb(s)", "Ts(s)", "Tgsc(s)", "predicted(s)", "measured(s)", "δ(s)"},
	}
	for i, pt := range o.Grid {
		cfg := core.DefaultConfig()
		cfg.BeaconPhase = pt.Tb
		cfg.StableWait = pt.Ts
		cc := central.DefaultConfig()
		cc.StabilizeWait = pt.Tgsc
		f, err := farm.Build(farm.Spec{
			Seed:            o.Seed + int64(i),
			UniformNodes:    o.Nodes,
			UniformAdapters: o.AdaptersPerNode,
			StartSkew:       o.StartSkew,
			Core:            cfg,
			Central:         cc,
		})
		if err != nil {
			return nil, err
		}
		f.Start()
		got, ok := f.RunUntilStable(o.Timeout)
		if !ok {
			return nil, fmt.Errorf("exp: formula1 point %+v never stabilized", pt)
		}
		predicted := pt.Tb + pt.Ts + pt.Tgsc
		t.AddRow(secs(pt.Tb), secs(pt.Ts), secs(pt.Tgsc), secs(predicted), secs(got), secs(got-predicted))
	}
	t.Note("paper §4.1: measured δ between 5 and 6 s on the 55-node Java prototype")
	return t, nil
}
