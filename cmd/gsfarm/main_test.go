package main

import (
	"encoding/json"
	"testing"

	gulfstream "repro"
)

func TestExampleScenarioRoundTrips(t *testing.T) {
	sc := exampleScenario()
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.AdminNodes != sc.AdminNodes || len(back.Domains) != len(sc.Domains) ||
		len(back.Script) != len(sc.Script) || back.DurationS != sc.DurationS {
		t.Fatalf("round trip mangled: %+v vs %+v", back, sc)
	}
}

func TestRunSmallScenario(t *testing.T) {
	sc := Scenario{
		Seed:       3,
		AdminNodes: 2,
		Domains:    []DomainJSON{{Name: "acme", FrontEnds: 1, BackEnds: 2}},
		DurationS:  60,
		Script: []Step{
			{AtS: 30, Action: "kill-node", Target: "acme-be-00"},
			{AtS: 45, Action: "restart-node", Target: "acme-be-00"},
			{AtS: 55, Action: "verify"},
		},
	}
	if err := run(sc, true); err != nil {
		t.Fatal(err)
	}
}

func TestApplyActions(t *testing.T) {
	f, err := gulfstream.NewFarm(gulfstream.Spec{
		Seed:       1,
		AdminNodes: 2,
		Domains:    []gulfstream.DomainSpec{{Name: "acme", FrontEnds: 1, BackEnds: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	f.RunFor(30 * 1e9)
	// Verify first, while the initial Central is alive (killing a node
	// below may hit the Central host; re-election needs simulated time).
	if err := apply(f, Step{Action: "verify"}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	cases := []struct {
		step Step
		ok   bool
	}{
		{Step{Action: "kill-node", Target: "acme-be-00"}, true},
		{Step{Action: "restart-node", Target: "acme-be-00"}, true},
		{Step{Action: "kill-node", Target: "ghost"}, false},
		{Step{Action: "kill-switch", Target: "sw-00"}, true},
		{Step{Action: "restore-switch", Target: "sw-00"}, true},
		{Step{Action: "fail-adapter", Target: "bogus", Arg: "recv"}, false},
		{Step{Action: "fail-adapter", Target: f.Nodes["acme-be-00"].Adapters[0].String(), Arg: "recv"}, true},
		{Step{Action: "fail-adapter", Target: f.Nodes["acme-be-00"].Adapters[0].String(), Arg: "ok"}, true},
		{Step{Action: "fail-adapter", Target: f.Nodes["acme-be-00"].Adapters[0].String(), Arg: "martian"}, false},
		{Step{Action: "no-such-action"}, false},
	}
	for _, c := range cases {
		err := apply(f, c.step)
		if c.ok && err != nil {
			t.Errorf("step %+v failed: %v", c.step, err)
		}
		if !c.ok && err == nil {
			t.Errorf("step %+v unexpectedly succeeded", c.step)
		}
	}
}
