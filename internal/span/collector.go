package span

import (
	"sort"

	"repro/internal/trace"
)

// Collector is the farm-wide record sink the stitcher reads from. Each
// source recorder gets a synchronous sink that copies matching records
// into the collector's own buffer, so stitching does not depend on ring
// capacity: a span's early records survive however much beacon traffic
// follows. Records() merges all sources into one deterministic
// chronology.
//
// In the simulator every daemon shares one recorder, so a single Attach
// is the common case; the multi-source merge exists for real
// deployments where each node ships its own stream.
type Collector struct {
	keep    func(trace.Record) bool
	sources []*source
}

type source struct {
	name string
	recs []trace.Record
}

// DefaultFilter keeps every record except the beacon send/hear chatter,
// which dominates volume and never carries a span milestone.
func DefaultFilter(r trace.Record) bool {
	return r.Kind != trace.KBeaconSent && r.Kind != trace.KBeaconHeard
}

// NewCollector builds a collector. keep selects which records are
// retained (nil = DefaultFilter).
func NewCollector(keep func(trace.Record) bool) *Collector {
	if keep == nil {
		keep = DefaultFilter
	}
	return &Collector{keep: keep}
}

// Attach subscribes the collector to a recorder. name labels the source
// in merge tie-breaks; sources are ordered by Attach call order. The
// simulator calls Attach once per farm (shared recorder) and never
// concurrently with capture, so no locking is needed.
func (c *Collector) Attach(name string, rec *trace.Recorder) {
	src := &source{name: name}
	c.sources = append(c.sources, src)
	rec.AddSink(func(r trace.Record) {
		if c.keep(r) {
			src.recs = append(src.recs, r)
		}
	})
}

// Add injects records directly (tests, offline dump stitching). The
// filter still applies.
func (c *Collector) Add(name string, recs []trace.Record) {
	src := &source{name: name}
	for _, r := range recs {
		if c.keep(r) {
			src.recs = append(src.recs, r)
		}
	}
	c.sources = append(c.sources, src)
}

// Len reports the number of retained records across all sources.
func (c *Collector) Len() int {
	n := 0
	for _, s := range c.sources {
		n += len(s.recs)
	}
	return n
}

// Records merges every source's stream into one slice ordered by
// (T, source index, Seq) — deterministic for identical inputs
// regardless of how many sources fed it.
func (c *Collector) Records() []trace.Record {
	type tagged struct {
		rec trace.Record
		src int
	}
	all := make([]tagged, 0, c.Len())
	for i, s := range c.sources {
		for _, r := range s.recs {
			all = append(all, tagged{rec: r, src: i})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.rec.T != b.rec.T {
			return a.rec.T < b.rec.T
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.rec.Seq < b.rec.Seq
	})
	out := make([]trace.Record, len(all))
	for i, t := range all {
		out[i] = t.rec
	}
	return out
}
