package conformance

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// The harness talks to daemons over their debug HTTP endpoints; calls
// are local, so timeouts are short — except moves, which block on a
// full SNMP round trip plus Central's event loop.
const (
	httpTimeout     = 5 * time.Second
	httpMoveTimeout = 45 * time.Second
)

// httpGetJSON fetches url and decodes the JSON body into v.
func httpGetJSON(url string, v any, timeout time.Duration) error {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, truncate(body, 200))
	}
	return json.Unmarshal(body, v)
}

// httpCommand fetches url and requires a 200; the body is discarded.
func httpCommand(url string, timeout time.Duration) error {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, truncate(body, 200))
	}
	return nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}
