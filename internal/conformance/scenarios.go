package conformance

import (
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/configdb"
	"repro/internal/netsim"
	"repro/internal/trace"
	"repro/internal/transport"
)

// convergeTimeout bounds every wait for the farm to reach a declared
// state. The -fast daemon profile converges a five-node farm from cold
// in well under 30 seconds; the slack absorbs loaded CI machines.
const convergeTimeout = 120 * time.Second

// Suites returns the shipped conformance scenarios, in run order.
func Suites() []Suite {
	return []Suite{
		smokeSuite(),
		nodeKillSuite(),
		leaderKillSuite(),
		plannedMoveSuite(),
		surpriseMoveSuite(),
		centralFailoverSuite(),
		configdbMismatchSuite(),
		chaosSuite(),
	}
}

// SuiteNames lists the shipped suite names in run order.
func SuiteNames() []string {
	var out []string
	for _, s := range Suites() {
		out = append(out, s.Name)
	}
	return out
}

// FindSuites resolves names ("all" selects everything) to suites.
func FindSuites(names []string) ([]Suite, error) {
	all := Suites()
	if len(names) == 1 && names[0] == "all" {
		return all, nil
	}
	var out []Suite
	for _, name := range names {
		found := false
		for _, s := range all {
			if s.Name == name {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("conformance: unknown suite %q (have %v)", name, SuiteNames())
		}
	}
	return out, nil
}

// smokeSuite: cold-start convergence. Five daemons boot from nothing;
// beacons form the per-segment AMGs, leaders report, and the admin
// leader's Central must discover exactly the wired topology.
func smokeSuite() Suite {
	return Suite{
		Name: "smoke",
		Desc: "cold-start convergence to the wired topology",
		Run: func(h *H) error {
			return h.WaitConverged(convergeTimeout)
		},
	}
}

// nodeKillSuite: a member node is SIGKILLed. Central must evict it,
// report it dead, and — once the harness resurrects it — close the
// incident and re-admit every adapter.
func nodeKillSuite() Suite {
	return Suite{
		Name: "node-kill",
		Desc: "SIGKILL a member node, verify eviction, restart, verify rejoin",
		Run: func(h *H) error {
			if err := h.WaitConverged(convergeTimeout); err != nil {
				return err
			}
			if err := h.KillNode("web-2"); err != nil {
				return err
			}
			if err := h.WaitSettled(convergeTimeout); err != nil {
				return fmt.Errorf("after kill: %w", err)
			}
			if err := h.RestartNode("web-2"); err != nil {
				return err
			}
			if err := h.WaitConverged(convergeTimeout); err != nil {
				return fmt.Errorf("after restart: %w", err)
			}
			return nil
		},
	}
}

// leaderKillSuite: kill whichever node's data adapter currently leads
// the vlan-101 group, forcing a leader re-election under a real
// process crash, then restart it.
func leaderKillSuite() Suite {
	return Suite{
		Name: "leader-kill",
		Desc: "SIGKILL the vlan-101 group leader, verify takeover and rejoin",
		Run: func(h *H) error {
			if err := h.WaitConverged(convergeTimeout); err != nil {
				return err
			}
			doc, err := h.Topology(false)
			if err != nil {
				return err
			}
			victim := ""
			for leader := range doc.Groups {
				ip, ok := transport.ParseIP(leader)
				if !ok {
					continue
				}
				node, spec, ok := h.Spec.Adapter(ip)
				if ok && spec.Index == 1 && h.F.VLANOf(ip) == 101 && node != h.ActiveCentral() {
					victim = node
					break
				}
			}
			if victim == "" {
				return fmt.Errorf("no vlan-101 data leader found in %v", doc.Groups)
			}
			h.Logf("suite: vlan-101 leader is on %s", victim)
			if err := h.KillNode(victim); err != nil {
				return err
			}
			if err := h.WaitSettled(convergeTimeout); err != nil {
				return fmt.Errorf("after leader kill: %w", err)
			}
			if err := h.RestartNode(victim); err != nil {
				return err
			}
			if err := h.WaitConverged(convergeTimeout); err != nil {
				return fmt.Errorf("after restart: %w", err)
			}
			return nil
		},
	}
}

// plannedMoveSuite: Central relocates web-1's data adapter to vlan-102
// through the switch agent (SNMP port-VLAN rewrite). The resulting
// regroup must be reported as a planned move — failure notifications
// suppressed, incident closed, verification clean afterwards.
func plannedMoveSuite() Suite {
	return Suite{
		Name: "planned-move",
		Desc: "Central-driven SNMP move of web-1 to vlan-102",
		Run: func(h *H) error {
			if err := h.WaitConverged(convergeTimeout); err != nil {
				return err
			}
			target := h.Spec.DataIP("web-1")
			if err := h.PlannedMove("web-1", map[int]int{1: 102}); err != nil {
				return err
			}
			// The SNMP SET has been acknowledged; the fabric applies the
			// re-plug asynchronously.
			if err := h.WaitFor("fabric re-plug of "+target.String(), httpMoveTimeout, func() (bool, error) {
				return h.F.VLANOf(target) == 102, nil
			}); err != nil {
				return err
			}
			if err := h.WaitConverged(convergeTimeout); err != nil {
				return fmt.Errorf("after planned move: %w", err)
			}
			return nil
		},
	}
}

// surpriseMoveSuite: the same re-plug performed behind Central's back.
// Central must infer an unexpected NodeMoved, and verification must
// flag the adapter as wrong-segment against the (now stale) database.
func surpriseMoveSuite() Suite {
	return Suite{
		Name: "surprise-move",
		Desc: "behind-the-back re-plug of web-1; expect unexpected-move + wrong-segment",
		Run: func(h *H) error {
			if err := h.WaitConverged(convergeTimeout); err != nil {
				return err
			}
			target := h.Spec.DataIP("web-1")
			if err := h.SurpriseMove(target, 102); err != nil {
				return err
			}
			h.ExpectMismatch("wrong-segment " + target.String())
			if err := h.WaitConverged(convergeTimeout); err != nil {
				return fmt.Errorf("after surprise move: %w", err)
			}
			return nil
		},
	}
}

// centralFailoverSuite: SIGKILL the Central host. The next admin
// leader must activate a Central, rebuild the topology, and report the
// dead node; restarting the old host must journal-replay and re-take
// the admin leadership (it holds the highest admin IP).
func centralFailoverSuite() Suite {
	return Suite{
		Name: "central-failover",
		Desc: "kill the Central host, verify takeover, restart, verify journal replay",
		Run: func(h *H) error {
			if err := h.WaitConverged(convergeTimeout); err != nil {
				return err
			}
			host := h.ActiveCentral()
			if host == "" {
				return fmt.Errorf("no active Central")
			}
			h.Logf("suite: active Central on %s", host)
			if err := h.KillNode(host); err != nil {
				return err
			}
			if err := h.WaitFor("Central takeover", convergeTimeout, func() (bool, error) {
				next := h.ActiveCentral()
				return next != "" && next != host, nil
			}); err != nil {
				return err
			}
			h.Logf("suite: Central took over on %s", h.ActiveCentral())
			if err := h.WaitSettled(convergeTimeout); err != nil {
				return fmt.Errorf("after failover: %w", err)
			}
			if err := h.RestartNode(host); err != nil {
				return err
			}
			if err := h.WaitFor("Central back on "+host, convergeTimeout, func() (bool, error) {
				return h.ActiveCentral() == host, nil
			}); err != nil {
				return err
			}
			if err := h.WaitConverged(convergeTimeout); err != nil {
				return fmt.Errorf("after restart: %w", err)
			}
			// The restarted host must have folded its journal back in
			// before rebuilding from live reports.
			h.S.Poll()
			for _, r := range h.S.Merged(nil) {
				if r.Kind == trace.KJournalReplayed && r.Node == host {
					return nil
				}
			}
			return fmt.Errorf("restarted Central host %s never journal-replayed", host)
		},
	}
}

// configdbMismatchSuite: the database lies three ways — a wrong VLAN
// for web-2's data adapter, a ghost node that exists only on paper,
// and an omitted real adapter. Verification must raise exactly the
// three corresponding verdict classes and nothing else.
func configdbMismatchSuite() Suite {
	var wrongVLAN, omitted transport.IP
	var ghostAdmin, ghostData transport.IP
	return Suite{
		Name: "configdb-mismatch",
		Desc: "planted database lies: wrong-segment, missing-adapter, unknown-adapter",
		Prepare: func(f *FarmSpec) {
			wrongVLAN = f.DataIP("web-2")
			omitted = f.DataIP("web-4")
			f.DBWrongVLAN = map[transport.IP]int{wrongVLAN: 102}
			f.DBOmit = map[transport.IP]bool{omitted: true}
			// The ghost reuses the admin/data subnets at host .19.
			ghostAdmin = f.AdminIP("web-1") + 8 // .11 -> .19
			ghostData = f.DataIP("web-1") + 8
			f.DBGhosts = []configdb.AdapterSpec{
				{IP: ghostAdmin, Node: "web-9", Index: 0, VLAN: AdminVLAN, Switch: f.SwitchName, Port: 9},
				{IP: ghostData, Node: "web-9", Index: 1, VLAN: 101, Switch: f.SwitchName, Port: 19},
			}
		},
		Run: func(h *H) error {
			h.ExpectMismatch(
				"wrong-segment "+wrongVLAN.String(),
				"missing-adapter "+ghostAdmin.String(),
				"missing-adapter "+ghostData.String(),
				"unknown-adapter "+omitted.String(),
			)
			return h.WaitConverged(convergeTimeout)
		},
	}
}

// chaosSuite: a composed schedule from the internal/check DSL — an
// adapter receive-failure that heals, a crash-restart, and a lossy
// segment — replayed against real daemons through the WallTarget.
func chaosSuite() Suite {
	return Suite{
		Name: "chaos",
		Desc: "check-DSL schedule: fail-recv + crash-restart + segment loss",
		Run: func(h *H) error {
			if err := h.WaitConverged(convergeTimeout); err != nil {
				return err
			}
			sched := check.Schedule{
				Seed: 71,
				Ops: []check.Op{
					{At: 2 * time.Second, Kind: check.OpFailAdapter,
						Adapter: h.Spec.DataIP("web-1"), Mode: netsim.FailRecv, For: 10 * time.Second},
					{At: 15 * time.Second, Kind: check.OpKillNode, Node: "web-2"},
					{At: 25 * time.Second, Kind: check.OpRestartNode, Node: "web-2"},
					{At: 30 * time.Second, Kind: check.OpDropProfile,
						Target: "vlan-101", Loss: 0.2, For: 8 * time.Second},
				},
				Settle: 15 * time.Second,
			}
			h.Logf("suite: running schedule: %s", sched.String())
			tg := NewWallTarget(h)
			defer tg.Stop()
			sched.Run(tg)
			if err := h.WaitConverged(convergeTimeout); err != nil {
				return fmt.Errorf("after chaos: %w", err)
			}
			return nil
		},
	}
}
