package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// sendResync unicasts a ResyncRequest claiming to come from `from` to the
// report plane of the daemon owning admin adapter `to`.
func (h *harness) sendResync(via *netsim.Adapter, from, to transport.IP) {
	h.t.Helper()
	msg := wire.Encode(&wire.ResyncRequest{From: from})
	if err := via.Unicast(transport.PortReport, transport.Addr{IP: to, Port: transport.PortReport}, msg); err != nil {
		h.t.Fatal(err)
	}
}

// TestResyncRequestRereportsLedGroups exercises the daemon side of
// Central's resync pull directly: a leader answers with a full report for
// every group it leads, a non-leader stays silent, and a request claiming
// to come from anyone but the believed Central is ignored.
func TestResyncRequestRereportsLedGroups(t *testing.T) {
	// The paper's testbed shape: 3 adapters per node on 3 segments. The
	// highest node leads all three AMGs and hosts Central.
	h := newHarness(t, 44)
	cfg := fastConfig()
	segs := []string{"admin", "front", "back"}
	for i := 1; i <= 5; i++ {
		var ips []transport.IP
		for s := 0; s < 3; s++ {
			ips = append(ips, ipn(byte(s), byte(i)))
		}
		h.addNode(cfg, fmt.Sprintf("node-%d", i), ips, segs)
	}
	for _, d := range h.daemons {
		d.Start()
	}
	h.run(15 * time.Second)

	leaderAdmin := ipn(0, 5) // highest admin IP: leads admin, hosts Central
	ledGroups := []transport.IP{ipn(0, 5), ipn(1, 5), ipn(2, 5)}
	for _, l := range ledGroups {
		if h.viewOf(l).Leader() != l {
			t.Fatalf("expected %v to lead its segment, leader is %v", l, h.viewOf(l).Leader())
		}
	}
	via := h.eps[ipn(0, 1)] // any admin-segment adapter can carry the request

	// A request from an IP nobody believes is Central must be ignored.
	base := len(h.central.reports)
	h.sendResync(via, ipn(0, 1), leaderAdmin)
	h.run(5 * time.Second)
	if got := len(h.central.reports) - base; got != 0 {
		t.Fatalf("forged resync triggered %d reports, want 0", got)
	}

	// A correct request to a daemon that leads nothing draws no reaction.
	h.sendResync(via, leaderAdmin, ipn(0, 2))
	h.run(5 * time.Second)
	if got := len(h.central.reports) - base; got != 0 {
		t.Fatalf("resync to a non-leader triggered %d reports, want 0", got)
	}

	// The real thing: the leader re-reports every led group, in full.
	h.sendResync(via, leaderAdmin, leaderAdmin)
	h.run(5 * time.Second)
	fulls := make(map[transport.IP]int)
	for _, r := range h.central.reports[base:] {
		if !r.Full {
			t.Fatalf("resync answered with a delta report for %v", r.Leader)
		}
		fulls[r.Leader]++
	}
	for _, l := range ledGroups {
		if fulls[l] == 0 {
			t.Fatalf("no full re-report for led group %v (got %v)", l, fulls)
		}
	}
	if len(fulls) != len(ledGroups) {
		t.Fatalf("re-reports for unexpected leaders: %v", fulls)
	}
}
