package snmp

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIntRoundTrip(t *testing.T) {
	vals := []int64{0, 1, -1, 127, 128, -128, -129, 255, 256, 1<<31 - 1, -(1 << 31), 1<<62 - 1, -(1 << 62)}
	for _, v := range vals {
		enc := appendInt(nil, v)
		r := &reader{buf: enc}
		got, err := r.readInt()
		if err != nil {
			t.Fatalf("readInt(%d): %v", v, err)
		}
		if got != v {
			t.Errorf("int round trip %d -> %d", v, got)
		}
	}
}

func TestIntRoundTripProperty(t *testing.T) {
	f := func(v int64) bool {
		enc := appendInt(nil, v)
		r := &reader{buf: enc}
		got, err := r.readInt()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntMinimalEncoding(t *testing.T) {
	// 127 must be 1 byte, 128 needs 2 (leading 0x00 to stay positive).
	if enc := appendInt(nil, 127); len(enc) != 3 { // tag + len + 1
		t.Errorf("127 encoded in %d bytes total", len(enc))
	}
	if enc := appendInt(nil, 128); len(enc) != 4 {
		t.Errorf("128 encoded in %d bytes total", len(enc))
	}
	if enc := appendInt(nil, -128); len(enc) != 3 {
		t.Errorf("-128 encoded in %d bytes total", len(enc))
	}
}

func TestOIDRoundTrip(t *testing.T) {
	oids := []string{
		"1.3.6.1.2.1.2.2.1.8.1",
		"0.0",
		"1.3.6.1.4.1.2.99999.1",
		"2.39.4294967295",
	}
	for _, s := range oids {
		oid := MustOID(s)
		enc, err := appendOID(nil, oid)
		if err != nil {
			t.Fatalf("encode %s: %v", s, err)
		}
		r := &reader{buf: enc}
		body, err := r.expect(tagOID)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeOID(body)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != s {
			t.Errorf("OID round trip %s -> %s", s, got)
		}
	}
}

func TestOIDRejectsBadRoots(t *testing.T) {
	for _, oid := range []OID{{}, {1}, {3, 1}, {1, 40}} {
		if _, err := appendOID(nil, oid); err == nil {
			t.Errorf("appendOID(%v) succeeded, want error", oid)
		}
	}
}

func TestOIDCompareAndPrefix(t *testing.T) {
	a := MustOID("1.3.6.1")
	b := MustOID("1.3.6.1.2")
	c := MustOID("1.3.6.2")
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 {
		t.Error("prefix must order before extension")
	}
	if b.Compare(c) >= 0 {
		t.Error("1.3.6.1.2 must order before 1.3.6.2")
	}
	if a.Compare(a) != 0 {
		t.Error("self-compare must be 0")
	}
	if !b.HasPrefix(a) || a.HasPrefix(b) || c.HasPrefix(a) {
		t.Error("HasPrefix wrong")
	}
}

func TestOIDAppendDoesNotAlias(t *testing.T) {
	base := MustOID("1.3.6.1.99")
	x := base.Append(1)
	y := base.Append(2)
	if x[len(x)-1] == y[len(y)-1] {
		t.Fatal("Append aliased backing arrays")
	}
}

func TestParseOIDErrors(t *testing.T) {
	for _, s := range []string{"", "1", "1.x.3", "1.-2.3", "1.99999999999999999999.3"} {
		if _, err := ParseOID(s); err == nil {
			t.Errorf("ParseOID(%q) succeeded", s)
		}
	}
}

func randomOID(rng *rand.Rand) OID {
	oid := OID{uint32(rng.Intn(3)), uint32(rng.Intn(40))}
	n := rng.Intn(10)
	for i := 0; i < n; i++ {
		oid = append(oid, rng.Uint32()>>uint(rng.Intn(20)))
	}
	return oid
}

func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(3) {
	case 0:
		return Integer(rng.Int63() - rng.Int63())
	case 1:
		b := make([]byte, rng.Intn(40))
		rng.Read(b)
		return Value{Kind: KindOctetString, Str: b}
	default:
		return Null
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 500; iter++ {
		m := &Message{
			Community: "farm-admin",
			Type:      PDUType(rng.Intn(4)),
			RequestID: rng.Int31(),
			ErrStatus: rng.Intn(6),
			ErrIndex:  rng.Intn(4),
		}
		n := rng.Intn(5)
		for i := 0; i < n; i++ {
			m.Bindings = append(m.Bindings, VarBind{OID: randomOID(rng), Value: randomValue(rng)})
		}
		enc, err := m.Marshal()
		if err != nil {
			t.Fatalf("marshal: %v (%+v)", err, m)
		}
		got, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if got.Community != m.Community || got.Type != m.Type || got.RequestID != m.RequestID ||
			got.ErrStatus != m.ErrStatus || got.ErrIndex != m.ErrIndex || len(got.Bindings) != len(m.Bindings) {
			t.Fatalf("header mismatch: %+v vs %+v", got, m)
		}
		for i := range m.Bindings {
			if got.Bindings[i].OID.Compare(m.Bindings[i].OID) != 0 {
				t.Fatalf("binding %d OID mismatch", i)
			}
			w, g := m.Bindings[i].Value, got.Bindings[i].Value
			if !w.Equal(g) {
				t.Fatalf("binding %d value mismatch: %v vs %v", i, w, g)
			}
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x30},
		{0x30, 0x05, 0x02, 0x01, 0x01}, // truncated body
		{0x02, 0x01, 0x00},             // not a sequence
		bytes.Repeat([]byte{0xff}, 64), // junk
		{0x30, 0x02, 0x02, 0x00},       // zero-length int inside
		{0x30, 0x03, 0x02, 0x81, 0xff}, // long-form length overrun
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: Unmarshal accepted garbage", i)
		}
	}
}

// Fuzz-ish robustness: no random byte string may panic the decoder.
func TestUnmarshalNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		b := make([]byte, rng.Intn(80))
		rng.Read(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %x: %v", b, r)
				}
			}()
			_, _ = Unmarshal(b)
		}()
	}
}

// Truncation property: every strict prefix of a valid message must fail to
// decode, never succeed with wrong content or panic.
func TestTruncationProperty(t *testing.T) {
	m := &Message{
		Community: "c",
		Type:      Set,
		RequestID: 77,
		Bindings:  []VarBind{{OID: MustOID("1.3.6.1.4.1.2.1"), Value: Integer(42)}},
	}
	enc, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(enc); i++ {
		if _, err := Unmarshal(enc[:i]); err == nil {
			t.Fatalf("prefix of length %d decoded successfully", i)
		}
	}
}

func TestLongFormLength(t *testing.T) {
	// A message with a >127-byte octet string forces long-form lengths.
	big := make([]byte, 300)
	for i := range big {
		big[i] = byte(i)
	}
	m := &Message{
		Community: "c", Type: Response, RequestID: 1,
		Bindings: []VarBind{{OID: MustOID("1.3.6.1"), Value: Value{Kind: KindOctetString, Str: big}}},
	}
	enc, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bindings[0].Value.Str, big) {
		t.Fatal("long payload corrupted")
	}
}

func TestValueEqual(t *testing.T) {
	if !Integer(5).Equal(Integer(5)) || Integer(5).Equal(Integer(6)) {
		t.Error("Integer equality wrong")
	}
	if !OctetString("a").Equal(OctetString("a")) || OctetString("a").Equal(OctetString("b")) {
		t.Error("OctetString equality wrong")
	}
	if !Null.Equal(Null) || Null.Equal(Integer(0)) {
		t.Error("Null equality wrong")
	}
}

func TestValueString(t *testing.T) {
	if Integer(42).String() != "42" || OctetString("hi").String() != "hi" || Null.String() != "null" {
		t.Error("Value.String misrendered")
	}
}

func TestReflectRoundTripEmptyBindings(t *testing.T) {
	m := &Message{Community: "x", Type: Get, RequestID: 9}
	enc, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	got.Bindings = nil // normalize empty vs nil
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip: %+v vs %+v", m, got)
	}
}

func BenchmarkMarshalMessage(b *testing.B) {
	m := &Message{
		Community: "farm-admin", Type: Set, RequestID: 1234,
		Bindings: []VarBind{
			{OID: MustOID("1.3.6.1.4.1.2.6509.2.1.5"), Value: Integer(103)},
			{OID: MustOID("1.3.6.1.4.1.2.6509.2.1.6"), Value: OctetString("domain-a")},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalMessage(b *testing.B) {
	m := &Message{
		Community: "farm-admin", Type: Set, RequestID: 1234,
		Bindings: []VarBind{
			{OID: MustOID("1.3.6.1.4.1.2.6509.2.1.5"), Value: Integer(103)},
		},
	}
	enc, _ := m.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(enc); err != nil {
			b.Fatal(err)
		}
	}
}
