package check

import (
	"strings"
	"testing"
	"time"

	"repro/internal/amg"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// stubContext serves canned views to the checkers.
type stubContext struct {
	views map[transport.IP]amg.Membership
	drift map[string]string
}

func (s *stubContext) ViewOf(ip transport.IP) (amg.Membership, bool) {
	v, ok := s.views[ip]
	return v, ok
}
func (s *stubContext) SegmentOf(ip transport.IP) (string, bool) { return "vlan-1", true }
func (s *stubContext) JournalDrift(node string) string          { return s.drift[node] }

func mkView(version uint64, ips ...transport.IP) amg.Membership {
	var ms []wire.Member
	for _, ip := range ips {
		ms = append(ms, wire.Member{IP: ip})
	}
	v := amg.New(version, ms)
	v.Version = version
	return v
}

func ip(s string) transport.IP {
	v, ok := transport.ParseIP(s)
	if !ok {
		panic("bad ip " + s)
	}
	return v
}

func commit(ctx *stubContext, self transport.IP, v amg.Membership) trace.Record {
	ctx.views[self] = v
	return trace.Record{Kind: trace.KViewCommit, Self: self,
		Group: v.Leader(), Version: v.Version, Count: uint32(v.Size())}
}

func TestMonotoneVersionsFlagsRegression(t *testing.T) {
	ctx := &stubContext{views: map[transport.IP]amg.Membership{}}
	e := NewEngine(ctx, NewMonotoneVersions())
	l, m := ip("10.0.0.9"), ip("10.0.0.5")

	e.Observe(commit(ctx, m, mkView(5, l, m)))
	e.Observe(commit(ctx, m, mkView(4, l, m))) // regression within lineage l
	if len(e.Violations()) != 1 {
		t.Fatalf("want 1 violation, got %v", e.Violations())
	}

	// A reset (crash-restart beacon) legitimizes starting over at v1.
	e2 := NewEngine(ctx, NewMonotoneVersions())
	e2.Observe(commit(ctx, m, mkView(5, l, m)))
	e2.Observe(trace.Record{Kind: trace.KBeaconSent, Self: m}) // Group 0: ungrouped
	e2.Observe(commit(ctx, m, mkView(1, m)))
	if !e2.Ok() {
		t.Fatalf("reset lineage flagged: %v", e2.Violations())
	}
}

func TestSingleIncarnationFlagsDivergentViews(t *testing.T) {
	ctx := &stubContext{views: map[transport.IP]amg.Membership{}}
	e := NewEngine(ctx, NewSingleIncarnation())
	l, a, b := ip("10.0.0.9"), ip("10.0.0.5"), ip("10.0.0.6")

	e.Observe(commit(ctx, l, mkView(3, l, a, b)))
	e.Observe(commit(ctx, a, mkView(3, l, a, b))) // same incarnation, same members: fine
	if !e.Ok() {
		t.Fatalf("consistent incarnation flagged: %v", e.Violations())
	}
	e.Observe(commit(ctx, b, mkView(3, l, b))) // same (l,3), different membership
	if len(e.Violations()) != 1 {
		t.Fatalf("want 1 violation, got %v", e.Violations())
	}
}

func TestTwoPCFlagsDoubleCommitAndUnpreparedInstall(t *testing.T) {
	ctx := &stubContext{views: map[transport.IP]amg.Membership{}}
	e := NewEngine(ctx, NewTwoPC())
	l, m := ip("10.0.0.9"), ip("10.0.0.5")

	e.Observe(trace.Record{Kind: trace.KPrepareRecv, Self: m, Group: l, Token: 7})
	e.Observe(trace.Record{Kind: trace.KCommitSent, Self: l, Group: l, Token: 7})
	e.Observe(trace.Record{Kind: trace.KCommitRecv, Self: m, Group: l, Token: 7})
	if !e.Ok() {
		t.Fatalf("clean round flagged: %v", e.Violations())
	}
	e.Observe(trace.Record{Kind: trace.KCommitSent, Self: l, Group: l, Token: 7})
	if len(e.Violations()) != 1 || !strings.Contains(e.Violations()[0].Msg, "twice") {
		t.Fatalf("double commit not flagged: %v", e.Violations())
	}

	e2 := NewEngine(ctx, NewTwoPC())
	e2.Observe(trace.Record{Kind: trace.KCommitRecv, Self: m, Group: l, Token: 9})
	if len(e2.Violations()) != 1 || !strings.Contains(e2.Violations()[0].Msg, "without a matching prepare") {
		t.Fatalf("unprepared install not flagged: %v", e2.Violations())
	}
	// "direct" installs (leader refresh / merge fold-in) are exempt.
	e3 := NewEngine(ctx, NewTwoPC())
	e3.Observe(trace.Record{Kind: trace.KCommitRecv, Self: m, Group: l, Token: 9, Detail: "direct"})
	if !e3.Ok() {
		t.Fatalf("direct install flagged: %v", e3.Violations())
	}
}

func TestEvictionEvidence(t *testing.T) {
	l, a, b := ip("10.0.0.9"), ip("10.0.0.5"), ip("10.0.0.6")
	ctx := &stubContext{views: map[transport.IP]amg.Membership{}}

	// Unverified drop: leader commits without verdict or retarget.
	e := NewEngine(ctx, NewEvictionEvidence())
	e.Observe(commit(ctx, l, mkView(1, l, a, b)))
	e.Observe(commit(ctx, l, mkView(2, l, a)))
	if len(e.Violations()) != 1 {
		t.Fatalf("unverified eviction not flagged: %v", e.Violations())
	}

	// Verdict-dead justifies the drop, and is consumed by it.
	e2 := NewEngine(ctx, NewEvictionEvidence())
	e2.Observe(commit(ctx, l, mkView(1, l, a, b)))
	e2.Observe(trace.Record{Kind: trace.KVerdictDead, Self: l, Peer: b, Token: 1})
	e2.Observe(commit(ctx, l, mkView(2, l, a)))
	if !e2.Ok() {
		t.Fatalf("verified eviction flagged: %v", e2.Violations())
	}
	e2.Observe(commit(ctx, l, mkView(3, l, a, b)))
	e2.Observe(commit(ctx, l, mkView(4, l, a))) // evidence was consumed: must re-verify
	if len(e2.Violations()) != 1 {
		t.Fatalf("evidence not consumed: %v", e2.Violations())
	}

	// A retarget since the previous commit blankets non-responder drops.
	e3 := NewEngine(ctx, NewEvictionEvidence())
	e3.Observe(commit(ctx, l, mkView(1, l, a, b)))
	e3.Observe(trace.Record{Kind: trace.KRetarget, Self: l, Group: l, Token: 5})
	e3.Observe(commit(ctx, l, mkView(2, l, a)))
	if !e3.Ok() {
		t.Fatalf("retargeted drop flagged: %v", e3.Violations())
	}

	// False accusation voids the alive-verdict evidence.
	e4 := NewEngine(ctx, NewEvictionEvidence())
	e4.Observe(commit(ctx, l, mkView(1, l, a, b)))
	e4.Observe(trace.Record{Kind: trace.KVerdictAlive, Self: l, Peer: b, Token: 2})
	e4.Observe(trace.Record{Kind: trace.KFalseAccusation, Self: l, Peer: b})
	e4.Observe(commit(ctx, l, mkView(2, l, a)))
	if len(e4.Violations()) != 1 {
		t.Fatalf("drop after false accusation not flagged: %v", e4.Violations())
	}
}

func TestVerdictRequiresProbe(t *testing.T) {
	ctx := &stubContext{views: map[transport.IP]amg.Membership{}}
	e := NewEngine(ctx, NewVerdictRequiresProbe())
	l, m := ip("10.0.0.9"), ip("10.0.0.5")

	e.Observe(trace.Record{Kind: trace.KProbeSent, Self: l, Peer: m, Token: 3})
	e.Observe(trace.Record{Kind: trace.KVerdictDead, Self: l, Peer: m, Token: 3})
	if !e.Ok() {
		t.Fatalf("probed verdict flagged: %v", e.Violations())
	}
	e.Observe(trace.Record{Kind: trace.KVerdictDead, Self: l, Peer: m, Token: 4})
	if len(e.Violations()) != 1 {
		t.Fatalf("probe-less verdict not flagged: %v", e.Violations())
	}
}

func TestSuspicionEvidenceWhitelist(t *testing.T) {
	ctx := &stubContext{views: map[transport.IP]amg.Membership{}}
	e := NewEngine(ctx, NewSuspicionEvidence())
	e.Observe(trace.Record{Kind: trace.KSuspicionRaised, Self: ip("10.0.0.5"),
		Peer: ip("10.0.0.6"), Detail: wire.ReasonMissedHeartbeats.String()})
	if !e.Ok() {
		t.Fatalf("detector-reason suspicion flagged: %v", e.Violations())
	}
	e.Observe(trace.Record{Kind: trace.KSuspicionRaised, Self: ip("10.0.0.5"),
		Peer: ip("10.0.0.6"), Detail: "gut-feeling"})
	if len(e.Violations()) != 1 {
		t.Fatalf("fabricated suspicion not flagged: %v", e.Violations())
	}
}

func TestNoDeadInView(t *testing.T) {
	l, a, b := ip("10.0.0.9"), ip("10.0.0.5"), ip("10.0.0.6")
	ctx := &stubContext{views: map[transport.IP]amg.Membership{}}
	e := NewEngine(ctx, NewNoDeadInView())

	e.Observe(commit(ctx, l, mkView(1, l, a, b)))
	e.Observe(trace.Record{Kind: trace.KVerdictDead, Self: l, Peer: b, Token: 1})
	e.Observe(commit(ctx, l, mkView(2, l, a, b))) // still contains the declared-dead b
	if len(e.Violations()) != 1 {
		t.Fatalf("dead member in committed view not flagged: %v", e.Violations())
	}

	// A prepare-ack from the member clears the mark (it is back).
	e2 := NewEngine(ctx, NewNoDeadInView())
	e2.Observe(trace.Record{Kind: trace.KVerdictDead, Self: l, Peer: b, Token: 1})
	e2.Observe(trace.Record{Kind: trace.KPrepareAck, Self: l, Peer: b, Group: l, Token: 2})
	e2.Observe(commit(ctx, l, mkView(2, l, a, b)))
	if !e2.Ok() {
		t.Fatalf("returned member flagged: %v", e2.Violations())
	}
}

func TestJournalConsistent(t *testing.T) {
	ctx := &stubContext{views: map[transport.IP]amg.Membership{},
		drift: map[string]string{"mgmt-01": "journal folds 2 groups, live tracks 1"}}
	e := NewEngine(ctx, NewJournalConsistent())
	e.Observe(trace.Record{Kind: trace.KReportApplied, Node: "mgmt-00"})
	if !e.Ok() {
		t.Fatalf("consistent journal flagged: %v", e.Violations())
	}
	e.Observe(trace.Record{Kind: trace.KReportApplied, Node: "mgmt-01"})
	if len(e.Violations()) != 1 {
		t.Fatalf("journal drift not flagged: %v", e.Violations())
	}
}

func TestViolationWindowAndCorrelation(t *testing.T) {
	ctx := &stubContext{views: map[transport.IP]amg.Membership{}}
	e := NewEngine(ctx, NewTwoPC())
	l := ip("10.0.0.9")
	for i := 0; i < 100; i++ {
		e.Observe(trace.Record{Kind: trace.KBeaconSent, Self: l, T: time.Duration(i) * time.Second})
	}
	e.Observe(trace.Record{Kind: trace.KCommitSent, Self: l, Group: l, Token: 7, T: 100 * time.Second})
	e.Observe(trace.Record{Kind: trace.KCommitSent, Self: l, Group: l, Token: 7, T: 101 * time.Second})
	vs := e.Violations()
	if len(vs) != 1 {
		t.Fatalf("want 1 violation, got %d", len(vs))
	}
	v := vs[0]
	if v.Txn != l.String()+"#7" {
		t.Errorf("txn correlation: got %q", v.Txn)
	}
	if v.T != 101*time.Second {
		t.Errorf("violation time: got %v", v.T)
	}
	if len(v.Window) != windowSize {
		t.Errorf("window size: got %d, want %d", len(v.Window), windowSize)
	}
	if last := v.Window[len(v.Window)-1]; last.Kind != trace.KCommitSent || last.T != 101*time.Second {
		t.Errorf("trigger not last in window: %v", last)
	}
}

func TestEngineAttachesAsSink(t *testing.T) {
	ctx := &stubContext{views: map[transport.IP]amg.Membership{}}
	rec := trace.New(64)
	e := NewEngine(ctx) // default: All()
	e.Attach(rec)
	l := ip("10.0.0.9")
	rec.Record(trace.Record{Kind: trace.KCommitSent, Self: l, Group: l, Token: 3})
	rec.Record(trace.Record{Kind: trace.KCommitSent, Self: l, Group: l, Token: 3})
	if e.Ok() {
		t.Fatal("sink-fed engine missed a double commit")
	}
}
