package exp

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// scaledDownB is a miniature E14b configuration: 8 zones × 10 nodes × 2
// adapters, small enough to sweep every shard count in a unit test.
func scaledDownB() ScaleBOptions {
	o := DefaultScaleB()
	o.Adapters = []int{160}
	o.ZoneNodes = 10
	o.Timeout = 2 * time.Minute
	return o
}

// TestScaleBCrossShardDeterminism is the tentpole contract at experiment
// level: one seed, one zoned config, shard counts 1/2/4/8 — identical
// events fired, identical whole-farm topology hash, identical
// stabilization instant. Shard count 4 additionally re-runs with parallel
// worker-goroutine windows, which must change nothing.
func TestScaleBCrossShardDeterminism(t *testing.T) {
	o := scaledDownB()
	run := func(shards int, parallel bool) ScaleBCell {
		t.Helper()
		f, err := ScaleBFarm(o, o.Adapters[0], shards, o.Seed)
		if err != nil {
			t.Fatal(err)
		}
		if f.Shards != nil {
			f.Shards.SetParallel(parallel)
			defer f.Shards.Stop()
		}
		f.Start()
		zones := o.Adapters[0] / (o.ZoneNodes * o.ZoneAdapters)
		at, ok := f.RunUntilAllStable(zones, o.Timeout)
		if !ok {
			t.Fatalf("shards=%d parallel=%v never stabilized", shards, parallel)
		}
		return ScaleBCell{Shards: shards, Fired: f.Fired(), TopoHash: TopologyHashAll(f), StableSecs: at.Seconds()}
	}
	base := run(1, false)
	if base.Fired == 0 || base.TopoHash == 0 {
		t.Fatalf("degenerate baseline: %+v", base)
	}
	for _, k := range []int{2, 4, 8} {
		got := run(k, false)
		if got.Fired != base.Fired || got.TopoHash != base.TopoHash || got.StableSecs != base.StableSecs {
			t.Errorf("shards=%d diverged: fired=%d hash=%016x stable=%v, want fired=%d hash=%016x stable=%v",
				k, got.Fired, got.TopoHash, got.StableSecs, base.Fired, base.TopoHash, base.StableSecs)
		}
	}
	par := run(4, true)
	if par.Fired != base.Fired || par.TopoHash != base.TopoHash {
		t.Errorf("shards=4 parallel diverged: fired=%d hash=%016x, want fired=%d hash=%016x",
			par.Fired, par.TopoHash, base.Fired, base.TopoHash)
	}
}

// loadRecordedE14 reads the committed BENCH_scale.json, accepting both the
// keyed layout ({"e14": [...], ...}) and the legacy bare array.
func loadRecordedE14(t *testing.T) []ScalePoint {
	t.Helper()
	blob, err := os.ReadFile("../../BENCH_scale.json")
	if err != nil {
		t.Skipf("no recorded benchmark file: %v", err)
	}
	var doc struct {
		E14 []ScalePoint `json:"e14"`
	}
	if err := json.Unmarshal(blob, &doc); err == nil && len(doc.E14) > 0 {
		return doc.E14
	}
	var legacy []ScalePoint
	if err := json.Unmarshal(blob, &legacy); err != nil {
		t.Fatalf("BENCH_scale.json unparseable in either layout: %v", err)
	}
	return legacy
}

// TestScaleReplaysRecordedRun pins the degenerate kernel to history: the
// E14 500-adapter cell re-run today must reproduce the committed events
// fired and topology hash exactly. This is what makes "shards=1 is the
// legacy kernel, bit for bit" falsifiable.
func TestScaleReplaysRecordedRun(t *testing.T) {
	points := loadRecordedE14(t)
	var rec *ScalePoint
	for i := range points {
		if points[i].Adapters == 500 {
			rec = &points[i]
		}
	}
	if rec == nil || len(rec.Trials) == 0 {
		t.Skip("no recorded 500-adapter point")
	}
	o := DefaultScale()
	for _, want := range rec.Trials {
		got, err := ScaleTrialRun(o, rec.Adapters, want.Seed)
		if err != nil {
			t.Fatal(err)
		}
		if got.Fired != want.Fired || got.TopoHash != want.TopoHash {
			t.Errorf("seed %d: fired=%d hash=%d, recorded fired=%d hash=%d",
				want.Seed, got.Fired, got.TopoHash, want.Fired, want.TopoHash)
		}
	}
}

// TestMergeBenchJSON covers the keyed writer: legacy array adoption, key
// replacement, and preservation of sibling keys.
func TestMergeBenchJSON(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	if err := os.WriteFile(path, []byte(`[{"adapters": 500}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mergeBenchJSON(path, "e14b", map[string]int{"host_cpus": 8}); err != nil {
		t.Fatal(err)
	}
	if err := mergeBenchJSON(path, "e14b", map[string]int{"host_cpus": 1}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		E14 []struct {
			Adapters int `json:"adapters"`
		} `json:"e14"`
		E14b struct {
			HostCPUs int `json:"host_cpus"`
		} `json:"e14b"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.E14) != 1 || doc.E14[0].Adapters != 500 {
		t.Errorf("legacy e14 array not adopted: %s", blob)
	}
	if doc.E14b.HostCPUs != 1 {
		t.Errorf("e14b not replaced: %s", blob)
	}
}
