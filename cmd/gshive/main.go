// Command gshive is the conformance-harness orchestrator: it boots
// farms of real gsd daemons on real UDP sockets, drives named chaos
// scenario suites against them through an emulated switching fabric,
// and holds the scraped farm-wide trace to the protocol invariants.
//
//	gshive list
//	gshive run [-fabric loopback|netns] [-suite all|name,...] [-artifacts dir] [-bin path]
//
// Artifacts per suite: verdict.json, merged-trace.jsonl, topology.json,
// ground-truth.json, plus every daemon incarnation's log and journal.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/conformance"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, s := range conformance.Suites() {
			fmt.Printf("%-18s %s\n", s.Name, s.Desc)
		}
	case "run":
		runCmd(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gshive list
  gshive run [-fabric loopback|netns] [-suite all|name,...] [-artifacts dir] [-bin path] [-poll dur]`)
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	fabric := fs.String("fabric", "loopback", "fabric: loopback (unprivileged) or netns (root)")
	suite := fs.String("suite", "all", "comma-separated suite names, or all")
	artifacts := fs.String("artifacts", "", "artifacts directory (default: temp dir)")
	bin := fs.String("bin", "", "gsd binary (default: build into artifacts dir)")
	poll := fs.Duration("poll", 500*time.Millisecond, "trace scrape cadence")
	fs.Parse(args)

	suites, err := conformance.FindSuites(strings.Split(*suite, ","))
	if err != nil {
		log.Fatal(err)
	}
	results, err := conformance.Run(suites, conformance.Options{
		Bin:       *bin,
		Fabric:    *fabric,
		Artifacts: *artifacts,
		Logf:      log.Printf,
		PollEvery: *poll,
	})
	if err != nil {
		log.Fatal(err)
	}

	passed := 0
	for _, r := range results {
		status := "FAIL"
		if r.Passed {
			status, passed = "PASS", passed+1
		}
		line := fmt.Sprintf("%s  %-18s %6.1fs", status, r.Suite, r.Seconds)
		if r.Verdict != nil {
			line += fmt.Sprintf("  records=%d sources=%d", r.Verdict.Records, r.Verdict.Sources)
		}
		if r.Err != "" {
			line += "  " + r.Err
		}
		fmt.Println(line)
	}
	fmt.Printf("%d/%d suites passed on the %s fabric\n", passed, len(results), *fabric)
	if passed != len(results) {
		os.Exit(1)
	}
}
