package central

import (
	"testing"
	"time"

	"repro/internal/configdb"
	"repro/internal/event"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// reconfigFixture wires a Central to a simulated switch through real SNMP.
type reconfigFixture struct {
	*fixture
	fabric *switchsim.Fabric
	sw     *switchsim.Switch
	db     *configdb.DB
}

func newReconfigFixture(t *testing.T) *reconfigFixture {
	t.Helper()
	sched := sim.NewScheduler(7)
	fabric := switchsim.NewFabric()
	net := netsim.New(sched, fabric)
	sw := fabric.AddSwitch("sw-x")

	// Admin VLAN 1: central host + switch management.
	centralEP := net.AddAdapter(ip(9, 9), "central-host")
	mgmt := net.AddAdapter(ip(9, 8), "sw-x-mgmt")
	sw.Connect(1, centralEP.LocalIP(), 1)
	sw.Connect(2, mgmt.LocalIP(), 1)
	// Admin adapters for the two managed nodes + one data adapter each.
	adminA := net.AddAdapter(ip(9, 1), "node-a")
	adminB := net.AddAdapter(ip(9, 2), "node-b")
	dataA := net.AddAdapter(ip(2, 1), "node-a")
	dataB := net.AddAdapter(ip(2, 2), "node-b")
	sw.Connect(3, adminA.LocalIP(), 1)
	sw.Connect(4, adminB.LocalIP(), 1)
	sw.Connect(5, dataA.LocalIP(), 100)
	sw.Connect(6, dataB.LocalIP(), 100)

	db := configdb.New()
	for _, spec := range []configdb.AdapterSpec{
		{IP: ip(9, 9), Node: "central-host", Index: 0, VLAN: 1, Switch: "sw-x", Port: 1},
		{IP: ip(9, 1), Node: "node-a", Index: 0, VLAN: 1, Switch: "sw-x", Port: 3},
		{IP: ip(9, 2), Node: "node-b", Index: 0, VLAN: 1, Switch: "sw-x", Port: 4},
		{IP: ip(2, 1), Node: "node-a", Index: 1, VLAN: 100, Switch: "sw-x", Port: 5},
		{IP: ip(2, 2), Node: "node-b", Index: 1, VLAN: 100, Switch: "sw-x", Port: 6},
	} {
		if err := db.AddAdapter(spec); err != nil {
			t.Fatal(err)
		}
	}

	bus := event.NewBus(true)
	cfg := DefaultConfig()
	cfg.StabilizeWait = 5 * time.Second
	c := New(cfg, clock{sched}, bus, db)
	c.RegisterSwitchAgent("sw-x", transport.Addr{IP: mgmt.LocalIP(), Port: transport.PortSNMP})
	sw.AttachAgent(mgmt, cfg.Community)
	c.Activate(centralEP)

	f := &reconfigFixture{
		fixture: &fixture{sched: sched, bus: bus, c: c, ep: centralEP},
		fabric:  fabric, sw: sw, db: db,
	}
	// Feed the discovered topology: admin group + data group.
	f.full(ip(9, 9), 1,
		wire.Member{IP: ip(9, 9), Node: "central-host", Admin: true},
		wire.Member{IP: ip(9, 1), Node: "node-a", Admin: true},
		wire.Member{IP: ip(9, 2), Node: "node-b", Admin: true})
	f.full(ip(2, 2), 1,
		wire.Member{IP: ip(2, 2), Node: "node-b", Index: 1},
		wire.Member{IP: ip(2, 1), Node: "node-a", Index: 1})
	return f
}

func TestReconfigVerifyCleanAndSeeded(t *testing.T) {
	f := newReconfigFixture(t)
	if ms := f.c.Verify(); len(ms) != 0 {
		t.Fatalf("clean verify found %v", ms)
	}
	if err := f.db.SetExpectedVLAN(ip(2, 1), 999); err != nil {
		t.Fatal(err)
	}
	ms := f.c.Verify()
	if len(ms) != 1 || ms[0].Kind != configdb.WrongSegment {
		t.Fatalf("seeded verify = %v", ms)
	}
	if f.bus.Count(event.VerifyMismatch) == 0 {
		t.Fatal("no VerifyMismatch events")
	}
}

func TestReconfigDisableConflicts(t *testing.T) {
	f := newReconfigFixture(t)
	f.c.cfg.DisableConflicts = true
	_ = f.db.SetExpectedVLAN(ip(2, 1), 999)
	// The Disable order goes to node-a's admin adapter over the wire; we
	// capture it there.
	var disables []wire.Message
	// node-a's admin adapter needs a bound handler.
	adminA := f.fabric // silence
	_ = adminA
	f.c.Verify()
	f.sched.RunFor(5 * time.Second)
	if f.bus.Count(event.AdapterDisabled) != 1 {
		t.Fatalf("AdapterDisabled events = %d", f.bus.Count(event.AdapterDisabled))
	}
	_ = disables
}

func TestMoveAdapterEndToEnd(t *testing.T) {
	f := newReconfigFixture(t)
	var moveErr error
	done := false
	f.c.MoveAdapter(ip(2, 1), 200, func(err error) { moveErr, done = err, true })
	f.sched.RunFor(5 * time.Second)
	if !done || moveErr != nil {
		t.Fatalf("move done=%v err=%v", done, moveErr)
	}
	// Physical change applied through SNMP.
	if vlan, _ := f.fabric.VLANOf(ip(2, 1)); vlan != 200 {
		t.Fatalf("physical vlan = %d", vlan)
	}
	// Database expectation updated.
	if spec, _ := f.db.Adapter(ip(2, 1)); spec.VLAN != 200 {
		t.Fatalf("db vlan = %d", spec.VLAN)
	}
	// The expectation is registered for suppression.
	if _, ok := f.c.expectedMoves[ip(2, 1)]; !ok {
		t.Fatal("expected move not registered")
	}
}

func TestMoveAdapterErrorsDirect(t *testing.T) {
	f := newReconfigFixture(t)
	expectErr := func(ipx transport.IP, vlan int) {
		t.Helper()
		var got error
		f.c.MoveAdapter(ipx, vlan, func(err error) { got = err })
		f.sched.RunFor(5 * time.Second)
		if got == nil {
			t.Fatalf("MoveAdapter(%v,%d) succeeded, want error", ipx, vlan)
		}
	}
	expectErr(ip(7, 7), 200) // unknown adapter
	// Unregistered switch.
	spec, _ := f.db.Adapter(ip(2, 1))
	_ = spec
	delete(f.c.switchAgents, "sw-x")
	expectErr(ip(2, 1), 200)
	if _, ok := f.c.expectedMoves[ip(2, 1)]; ok {
		t.Fatal("failed move left an expectation behind")
	}
}

func TestMoveNodeEndToEnd(t *testing.T) {
	f := newReconfigFixture(t)
	var moveErr error
	done := false
	f.c.MoveNode("node-a", map[int]int{1: 300}, func(err error) { moveErr, done = err, true })
	f.sched.RunFor(5 * time.Second)
	if !done || moveErr != nil {
		t.Fatalf("MoveNode done=%v err=%v", done, moveErr)
	}
	if vlan, _ := f.fabric.VLANOf(ip(2, 1)); vlan != 300 {
		t.Fatalf("vlan = %d", vlan)
	}
	// Admin adapter untouched.
	if vlan, _ := f.fabric.VLANOf(ip(9, 1)); vlan != 1 {
		t.Fatalf("admin vlan = %d", vlan)
	}
	// Errors: unknown node, empty mapping.
	var got error
	f.c.MoveNode("ghost", map[int]int{1: 300}, func(err error) { got = err })
	if got == nil {
		t.Fatal("unknown node accepted")
	}
	f.c.MoveNode("node-a", map[int]int{7: 300}, func(err error) { got = err })
	if got == nil {
		t.Fatal("no-op move accepted")
	}
}

func TestRegisterAndGroupCount(t *testing.T) {
	f := newReconfigFixture(t)
	if f.c.GroupCount() != 2 {
		t.Fatalf("GroupCount = %d", f.c.GroupCount())
	}
	f.c.RegisterSwitchAgent("sw-y", transport.Addr{IP: ip(9, 7), Port: 161})
	if _, ok := f.c.switchAgents["sw-y"]; !ok {
		t.Fatal("RegisterSwitchAgent did not register")
	}
}

func TestExpectedMoveExpirySweep(t *testing.T) {
	f := newReconfigFixture(t)
	f.c.expectedMoves[ip(2, 1)] = f.sched.Now() + 2*time.Second
	f.sched.RunFor(10 * time.Second) // sweep timer fires at 5s
	if _, still := f.c.expectedMoves[ip(2, 1)]; still {
		t.Fatal("stale expectation not swept")
	}
	found := false
	for _, e := range f.bus.Filter(event.VerifyMismatch) {
		if e.Detail == "planned move never completed" {
			found = true
		}
	}
	if !found {
		t.Fatal("no incompleteness finding")
	}
}

// DiscoverWiring learns the wiring by SNMP-walking the switches; with it,
// switch correlation works without any configuration database (the
// paper's §3 future-work item).
func TestDiscoverWiringAndCorrelateWithoutDB(t *testing.T) {
	f := newReconfigFixture(t)
	// Throw away the database: correlation must come from SNMP wiring.
	f.c.db = nil
	var wiring map[string][]transport.IP
	var werr error
	f.c.DiscoverWiring(func(w map[string][]transport.IP, err error) { wiring, werr = w, err })
	f.sched.RunFor(5 * time.Second)
	if werr != nil {
		t.Fatal(werr)
	}
	if len(wiring["sw-x"]) != 6 { // central + mgmt + 2 admin + 2 data
		t.Fatalf("wiring = %v", wiring)
	}
	// Kill every tracked adapter on sw-x via reports: switch inferred dead.
	f.report(&wire.Report{Leader: ip(9, 9), Version: 2,
		Left: []transport.IP{ip(9, 1), ip(9, 2)}})
	f.report(&wire.Report{Leader: ip(2, 2), Version: 2,
		Left: []transport.IP{ip(2, 1)}})
	// The data group's leader itself dies; its node-b admin already gone.
	// Use a takeover-free shape: its own singleton full marks it...
	// Simplest: the remaining adapters (9,9) and (2,2) stay alive, so the
	// switch must NOT be declared dead yet.
	if f.bus.Count(event.SwitchFailed) != 0 {
		t.Fatalf("switch declared dead with live adapters: %v", f.bus.Filter(event.SwitchFailed))
	}
	_ = wiring
}

func TestDiscoverWiringErrors(t *testing.T) {
	f := newReconfigFixture(t)
	f.c.Deactivate()
	var got error
	f.c.DiscoverWiring(func(_ map[string][]transport.IP, err error) { got = err })
	if got == nil {
		t.Fatal("inactive DiscoverWiring succeeded")
	}
	// Unreachable agent: times out with an error.
	f2 := newReconfigFixture(t)
	f2.c.switchAgents["ghost"] = transport.Addr{IP: ip(9, 77), Port: 161}
	var werr error
	done := false
	f2.c.DiscoverWiring(func(_ map[string][]transport.IP, err error) { werr, done = err, true })
	f2.sched.RunFor(30 * time.Second)
	if !done || werr == nil {
		t.Fatalf("walk of unreachable agent: done=%v err=%v", done, werr)
	}
}
