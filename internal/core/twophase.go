package core

import (
	"time"

	"repro/internal/amg"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// leaderState is everything an adapter does only while leading an AMG:
// running membership two-phase commits, batching joins and removals,
// verifying suspicions, and triggering reports to GulfStream Central.
type leaderState struct {
	p *adapterProto

	round *twoPCRound

	dirtyJoins map[transport.IP]wire.Member
	// dirtyRemoves maps member -> verified death (true) vs. departure to
	// another group (false); only deaths fire the Death hook on commit.
	dirtyRemoves map[transport.IP]bool
	changeTimer  transport.Timer

	suspicions map[transport.IP]*suspicionState
	evictAt    map[transport.IP]time.Duration

	// reporting
	reported      amg.Membership // membership as last told to Central
	reportedValid bool
	stableTimer   transport.Timer
	// prevLeader/prevVersion identify the group this leadership term
	// superseded (set on successor takeover); carried in full reports so
	// Central can rekey the right lineage.
	prevLeader  transport.IP
	prevVersion uint64
	// fresh marks a lineage break (reformation after total isolation);
	// carried in the next full report, then cleared.
	fresh bool

	refreshAt map[transport.IP]time.Duration
}

func newLeaderState(p *adapterProto) *leaderState {
	return &leaderState{
		p:            p,
		dirtyJoins:   make(map[transport.IP]wire.Member),
		dirtyRemoves: make(map[transport.IP]bool),
		suspicions:   make(map[transport.IP]*suspicionState),
		refreshAt:    make(map[transport.IP]time.Duration),
		evictAt:      make(map[transport.IP]time.Duration),
	}
}

func (l *leaderState) stop() {
	if l.round != nil {
		l.round.cancel()
		l.round = nil
	}
	if l.changeTimer != nil {
		l.changeTimer.Stop()
		l.changeTimer = nil
	}
	if l.stableTimer != nil {
		l.stableTimer.Stop()
		l.stableTimer = nil
	}
	for _, s := range l.suspicions {
		s.cancel()
	}
	l.suspicions = make(map[transport.IP]*suspicionState)
}

// --- membership change batching ---

// queueJoin schedules a member addition. Higher-IP ungrouped adapters are
// ignored: they will finish discovery as leaders and absorb us through the
// normal merge path, keeping "highest IP leads" invariant intact.
func (l *leaderState) queueJoin(m wire.Member) {
	p := l.p
	if m.IP == p.self || m.IP == 0 {
		return
	}
	if m.IP > p.self {
		return
	}
	if p.view.Contains(m.IP) && !l.dirtyRemoves[m.IP] {
		return
	}
	delete(l.dirtyRemoves, m.IP)
	l.dirtyJoins[m.IP] = m
	l.scheduleChange()
}

// queueRemove schedules a member removal after a verified death.
func (l *leaderState) queueRemove(ip transport.IP) {
	l.remove(ip, true)
}

// queueDepart schedules removal of a member that is alive but follows
// another leader (it moved segments); no death is declared.
func (l *leaderState) queueDepart(ip transport.IP) {
	l.remove(ip, false)
}

func (l *leaderState) remove(ip transport.IP, death bool) {
	p := l.p
	if ip == p.self || !p.view.Contains(ip) {
		return
	}
	delete(l.dirtyJoins, ip)
	if prev, ok := l.dirtyRemoves[ip]; !ok || !prev {
		l.dirtyRemoves[ip] = death
	}
	l.scheduleChange()
}

func (l *leaderState) scheduleChange() {
	if l.changeTimer != nil {
		return
	}
	l.changeTimer = l.p.clock().AfterFunc(l.p.d.cfg.JoinBatchDelay, l.flushChanges)
}

func (l *leaderState) flushChanges() {
	l.changeTimer = nil
	if l.p.state != stLeader {
		return
	}
	if l.round != nil {
		// A commit is in flight; batch again after it resolves.
		l.scheduleChange()
		return
	}
	if len(l.dirtyJoins) == 0 && len(l.dirtyRemoves) == 0 {
		return
	}
	target := l.p.view
	op := wire.OpJoin
	if len(l.dirtyRemoves) > 0 {
		var gone []transport.IP
		for ip := range l.dirtyRemoves {
			gone = append(gone, ip)
		}
		target = target.Without(gone...)
		op = wire.OpRemove
	}
	if len(l.dirtyJoins) > 0 {
		var extra []wire.Member
		for _, m := range l.dirtyJoins {
			extra = append(extra, m)
		}
		target = target.WithJoined(extra...)
		if op == wire.OpJoin && len(l.dirtyJoins) > 1 {
			op = wire.OpMerge
		}
	}
	var deaths []transport.IP
	for ip, wasDeath := range l.dirtyRemoves {
		if wasDeath {
			deaths = append(deaths, ip)
		}
	}
	l.dirtyJoins = make(map[transport.IP]wire.Member)
	l.dirtyRemoves = make(map[transport.IP]bool)
	if target.SameMembers(l.p.view) {
		return
	}
	l.startChange(op, target)
	if l.round != nil {
		l.round.deaths = append(l.round.deaths, deaths...)
	}
}

// --- the two-phase commit itself ---

type twoPCRound struct {
	l       *leaderState
	op      wire.Op
	target  amg.Membership
	token   uint64
	waiting map[transport.IP]bool
	// deaths lists verified-dead members whose removal this round carries;
	// the Death hook fires only when the removal actually commits (an
	// isolation abort retracts unconfirmable declarations).
	deaths  []transport.IP
	resends int // Prepare retransmissions for the current target
	shrinks int // how many times the target was reduced
	timer   transport.Timer
	done    bool
}

func (r *twoPCRound) cancel() {
	r.done = true
	if r.timer != nil {
		r.timer.Stop()
		r.timer = nil
	}
}

// startChange opens a 2PC establishing target. If a round is already in
// flight the desired changes are folded back into the dirty sets.
func (l *leaderState) startChange(op wire.Op, target amg.Membership) {
	p := l.p
	if l.round != nil {
		joined, left := target.Diff(p.view)
		for _, m := range joined {
			l.queueJoin(m)
		}
		for _, ip := range left {
			l.queueRemove(ip)
		}
		return
	}
	floor := p.view.Version
	if p.ledFloor > floor {
		// Re-promoted after an absorption: the current view's counter
		// (inherited from the absorbing group) sits below versions this
		// adapter's own lineage already committed. Reusing one would give
		// two different memberships the same (leader, version) identity.
		floor = p.ledFloor
	}
	if target.Version <= floor {
		target.Version = floor + 1
	}
	r := &twoPCRound{l: l, op: op, target: target, token: p.d.token(), waiting: make(map[transport.IP]bool)}
	l.round = r
	r.send()
}

// send issues Prepares to every other member and arms the round timer.
func (r *twoPCRound) send() {
	p := r.l.p
	for _, m := range r.target.Members {
		if m.IP != p.self {
			r.waiting[m.IP] = true
		}
	}
	if len(r.waiting) == 0 {
		r.commit()
		return
	}
	p.trace(&trace.Record{Kind: trace.KPrepareSent, Group: p.self,
		Version: r.target.Version, Token: r.token, Count: uint32(len(r.target.Members))})
	// Encode once, fan the same packet out to every member: the Prepare
	// carries the full member list, so per-member encoding would be O(N²)
	// bytes per round.
	prep := &wire.Prepare{Leader: p.self, Version: r.target.Version, Token: r.token, Op: r.op, Members: r.target.Members}
	pkt := wire.NewPacket(prep)
	for _, m := range r.target.Members {
		if m.IP != p.self {
			p.sendMemberFan(m.IP, pkt)
		}
	}
	pkt.Free()
	r.timer = p.clock().AfterFunc(p.d.cfg.CommitTimeout, r.timeout)
}

// onPrepareAck is routed here by the adapter's member-plane handler.
func (l *leaderState) onPrepareAck(m *wire.PrepareAck) {
	r := l.round
	if r == nil || r.done || m.Token != r.token || m.Leader != l.p.self {
		return
	}
	if !r.waiting[m.From] {
		return
	}
	det := ""
	if !m.OK {
		det = "rejected"
	}
	l.p.trace(&trace.Record{Kind: trace.KPrepareAck, Peer: m.From, Group: l.p.self,
		Version: m.Version, Token: m.Token, Detail: det})
	if !m.OK {
		// The member refused (it belongs to a higher leader, or raced
		// ahead of us). Drop it and re-run the round without it.
		r.retarget(r.target.Without(m.From))
		return
	}
	delete(r.waiting, m.From)
	if len(r.waiting) == 0 {
		if r.timer != nil {
			r.timer.Stop()
		}
		r.commit()
	}
}

// timeout first retransmits the Prepare to members that stayed silent
// (lost packets, not dead members); only after the retry budget does it
// drop them and retry with the shrunken set.
func (r *twoPCRound) timeout() {
	if r.done {
		return
	}
	p := r.l.p
	r.timer = nil
	if r.resends < p.d.cfg.CommitRetries {
		r.resends++
		p.trace(&trace.Record{Kind: trace.KPrepareSent, Group: p.self,
			Version: r.target.Version, Token: r.token,
			Count: uint32(len(r.target.Members)), Detail: "resend"})
		prep := &wire.Prepare{Leader: p.self, Version: r.target.Version, Token: r.token, Op: r.op, Members: r.target.Members}
		pkt := wire.NewPacket(prep)
		// Resend in ascending IP order: iterating the waiting map directly
		// would consume the shared RNG (loss/latency draws) in map order and
		// break run-for-run determinism.
		for _, m := range r.target.Members {
			if r.waiting[m.IP] {
				p.sendMemberFan(m.IP, pkt)
			}
		}
		pkt.Free()
		r.timer = p.clock().AfterFunc(p.d.cfg.CommitTimeout, r.timeout)
		return
	}
	var silent []transport.IP
	for ip := range r.waiting {
		silent = append(silent, ip)
	}
	r.retarget(r.target.Without(silent...))
}

// retarget restarts the round against a reduced membership. Versions keep
// the original target's number (it was never committed); the rounds are
// bounded because the set shrinks toward the singleton.
//
// Each retarget draws a FRESH token. Reusing the old one opens a
// divergence race the invariant engine caught immediately: member M acks
// Prepare(target1, tok); the ack is still in flight when another member's
// rejection triggers a retarget; the re-sent Prepare(target2, tok) to M
// is lost or reordered behind the Commit; M's stale ack then satisfies
// the new round's waiting set (acks matched by token alone), the leader
// commits target2, and M — whose pending view is still target1 under the
// same token — installs target1. Two adapters end up committed to the
// same (leader, version) incarnation with different memberships. A fresh
// token makes stale acks and stale pending views unmatchable.
func (r *twoPCRound) retarget(target amg.Membership) {
	p := r.l.p
	if r.timer != nil {
		r.timer.Stop()
		r.timer = nil
	}
	// Isolation guard: if every other member of an established group went
	// silent at once, the overwhelmingly likely explanation is that *we*
	// were cut off (moved to another VLAN, or partitioned) — not that the
	// whole group died. Declaring a majority dead from the minority side
	// would flood Central with false failures (§3.1's moved-leader case),
	// so we abandon the lineage and reform as a fresh singleton instead.
	if len(target.Members) <= 1 && p.view.Size() > 2 && p.view.Contains(p.self) {
		r.done = true
		r.l.round = nil
		p.isolationOrphan()
		return
	}
	target.Version = r.target.Version
	r.token = p.d.token()
	p.trace(&trace.Record{Kind: trace.KRetarget, Group: p.self,
		Version: target.Version, Token: r.token, Count: uint32(len(target.Members))})
	r.target = target
	r.waiting = make(map[transport.IP]bool)
	r.resends = 0
	r.shrinks++
	if r.shrinks > p.view.Size()+p.d.cfg.CommitRetries {
		// Pathological: fall back to a singleton.
		r.target = amg.New(target.Version, []wire.Member{p.selfMember()})
		r.target.Version = target.Version
	}
	r.send()
}

// commit finalizes phase two.
func (r *twoPCRound) commit() {
	p := r.l.p
	r.done = true
	r.l.round = nil
	p.trace(&trace.Record{Kind: trace.KCommitSent, Group: p.self,
		Version: r.target.Version, Token: r.token, Count: uint32(len(r.target.Members))})
	c := &wire.Commit{Leader: p.self, Version: r.target.Version, Token: r.token, Members: r.target.Members}
	pkt := wire.NewPacket(c)
	for _, m := range r.target.Members {
		if m.IP != p.self {
			p.sendMemberFan(m.IP, pkt)
		}
	}
	pkt.Free()
	if p.d.hooks.Death != nil {
		for _, ip := range r.deaths {
			if !r.target.Contains(ip) {
				p.d.hooks.Death(p.self, ip)
			}
		}
	}
	p.commitView(r.target)
	if len(r.l.dirtyJoins) > 0 || len(r.l.dirtyRemoves) > 0 {
		r.l.scheduleChange()
	}
}

// --- suspicion verification (leader side) ---

type suspicionState struct {
	l         *leaderState
	suspect   transport.IP
	reporters map[transport.IP]bool
	window    transport.Timer
	probing   bool
}

func (s *suspicionState) cancel() {
	if s.window != nil {
		s.window.Stop()
		s.window = nil
	}
}

// onSuspicion collects reports about a member and decides when to verify.
// With the bidirectional ring the leader waits for both neighbors (or the
// consensus window) before probing; otherwise it probes at once. Paper §3.
func (l *leaderState) onSuspicion(m *wire.Suspect) {
	p := l.p
	if m.Reason == wire.ReasonStaleView {
		// Not a liveness report: a member saw the subject heartbeating
		// under a different group identity. Refresh it (or evict it if it
		// is not ours at all) — no death machinery.
		if p.view.Contains(m.Suspect) {
			l.refreshMember(m.Suspect)
		} else {
			l.evictStray(m.Suspect)
		}
		return
	}
	if m.Suspect == p.self || !p.view.Contains(m.Suspect) {
		return
	}
	if _, pending := l.dirtyRemoves[m.Suspect]; pending {
		return // removal already scheduled
	}
	if p.d.cfg.UnsafeSkipVerify {
		// Fault injection for the simulation-testing harness: believe the
		// report outright, skipping the verification probe the paper
		// demands. The invariant engine must flag the resulting commit.
		l.queueRemove(m.Suspect)
		return
	}
	s := l.suspicions[m.Suspect]
	if s == nil {
		s = &suspicionState{l: l, suspect: m.Suspect, reporters: make(map[transport.IP]bool)}
		l.suspicions[m.Suspect] = s
		if p.d.cfg.Consensus {
			s.window = p.clock().AfterFunc(p.d.cfg.ConsensusWindow, func() {
				// Adjacent failures can leave only one live witness; the
				// leader investigates on its own after the window.
				s.window = nil
				s.verify()
			})
		}
	}
	s.reporters[m.Reporter] = true
	if !p.d.cfg.Consensus || len(s.reporters) >= 2 {
		s.verify()
	}
}

func (s *suspicionState) verify() {
	if s.probing {
		return
	}
	s.probing = true
	s.cancel()
	l, suspect := s.l, s.suspect
	p := l.p
	p.verifySuspect(suspect, func(res probeResult) {
		if p.lead != l || l.suspicions[suspect] != s {
			return
		}
		delete(l.suspicions, suspect)
		switch {
		case res.dead:
			l.queueRemove(suspect)
		case res.leader == p.self || res.leader == l.prevLeader:
			// Alive and (modulo a lost Commit) one of ours: the report was
			// false (the paper: "If the reported failure proves to be
			// false, it is ignored"). Refresh its view in case it is the
			// stale one.
			p.trace(&trace.Record{Kind: trace.KFalseAccusation, Peer: suspect,
				Group: p.self, Version: p.view.Version})
			if res.version < p.view.Version {
				l.refreshMember(suspect)
			}
		default:
			// Alive but following another leader: it moved segments. It
			// is not dead — remove it without a death declaration.
			l.queueDepart(suspect)
		}
	})
}

// evictStray tells an adapter outside our committed view to abandon its
// stale membership and rediscover the segment. Rate-limited per target.
func (l *leaderState) evictStray(ip transport.IP) {
	p := l.p
	if ip == p.self || p.view.Contains(ip) {
		return
	}
	now := p.now()
	if at, ok := l.evictAt[ip]; ok && now-at < 2*time.Second {
		return
	}
	l.evictAt[ip] = now
	p.sendMember(ip, &wire.Evict{Leader: p.self, Target: ip, Version: p.view.Version})
}

// refreshMember re-sends the current committed view to one member,
// rate-limited, healing lost Commits.
func (l *leaderState) refreshMember(ip transport.IP) {
	p := l.p
	now := p.now()
	if at, ok := l.refreshAt[ip]; ok && now-at < time.Second {
		return
	}
	l.refreshAt[ip] = now
	p.sendMember(ip, &wire.Commit{Leader: p.self, Version: p.view.Version, Token: 0, Members: p.view.Members})
}

// --- reporting triggers ---

// viewCommitted runs after every commit while leading.
func (l *leaderState) viewCommitted(v amg.Membership) {
	// Drop suspicion state about departed members.
	for ip, s := range l.suspicions {
		if !v.Contains(ip) {
			s.cancel()
			delete(l.suspicions, ip)
		}
	}
	for ip := range l.refreshAt {
		if !v.Contains(ip) {
			delete(l.refreshAt, ip)
		}
	}
	for ip := range l.evictAt {
		if v.Contains(ip) {
			delete(l.evictAt, ip)
		}
	}
	if !l.reportedValid {
		// First report of this leadership term waits until membership has
		// been quiet for Ts (paper §4.1's stabilization term).
		l.resetStableTimer()
		return
	}
	joined, left := v.Diff(l.reported)
	if len(joined) == 0 && len(left) == 0 {
		return
	}
	l.reported = v
	l.p.d.reporter.enqueue(&wire.Report{
		Leader:  l.p.self,
		Segment: l.p.segmentHint(),
		Version: v.Version,
		Members: joined,
		Left:    left,
	})
}

// resetStableTimer (re)arms the Ts quiet wait before the first report.
func (l *leaderState) resetStableTimer() {
	if l.stableTimer != nil {
		l.stableTimer.Stop()
	}
	l.stableTimer = l.p.clock().AfterFunc(l.p.d.cfg.StableWait, func() {
		l.stableTimer = nil
		if l.p.state != stLeader || l.p.lead != l {
			return
		}
		l.reported = l.p.view
		l.reportedValid = true
		l.p.d.reporter.enqueue(&wire.Report{
			Leader:      l.p.self,
			Segment:     l.p.segmentHint(),
			Version:     l.p.view.Version,
			Full:        true,
			PrevLeader:  l.prevLeader,
			PrevVersion: l.prevVersion,
			Fresh:       l.fresh,
			Members:     l.p.view.Members,
		})
		l.fresh = false
	})
}
