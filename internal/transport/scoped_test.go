package transport

import (
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// loopbackMulticastWorks probes whether this host delivers multicast over
// loopback (sandboxes often don't); tests that need it skip otherwise.
func loopbackMulticastWorks(t *testing.T) bool {
	t.Helper()
	gaddr := &net.UDPAddr{IP: net.IPv4(239, 7, 7, 7), Port: 47999}
	ifi := interfaceFor(net.IPv4(127, 0, 0, 1))
	rc, err := net.ListenMulticastUDP("udp4", ifi, gaddr)
	if err != nil {
		return false
	}
	defer rc.Close()
	sc, err := listenUDPReuse(net.IPv4(127, 0, 0, 2), 0)
	if err != nil {
		return false
	}
	defer sc.Close()
	if err := setMulticastInterface(sc, net.IPv4(127, 0, 0, 2)); err != nil {
		return false
	}
	if _, err := sc.WriteToUDP([]byte("probe"), gaddr); err != nil {
		return false
	}
	rc.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
	buf := make([]byte, 16)
	_, _, err = rc.ReadFromUDP(buf)
	return err == nil
}

// testPort returns a per-process port to keep parallel CI jobs from
// colliding on the loopback namespace.
func testPort() uint16 { return uint16(40000 + os.Getpid()%20000) }

// recvSink collects packets delivered to an endpoint's bound handler.
type recvSink struct {
	mu   sync.Mutex
	got  []string
	cond chan struct{}
}

func newRecvSink() *recvSink { return &recvSink{cond: make(chan struct{}, 64)} }

func (s *recvSink) handler(src, dst Addr, payload []byte) {
	s.mu.Lock()
	s.got = append(s.got, fmt.Sprintf("%v>%v:%s", src.IP, dst.IP, payload))
	s.mu.Unlock()
	select {
	case s.cond <- struct{}{}:
	default:
	}
}

func (s *recvSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.got)
}

// waitCount waits until the sink has at least n packets or the deadline
// passes, reporting the final count.
func (s *recvSink) waitCount(n int, d time.Duration) int {
	deadline := time.Now().Add(d)
	for {
		if c := s.count(); c >= n {
			return c
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return s.count()
		}
		select {
		case <-s.cond:
		case <-time.After(remain):
		}
	}
}

// scopedPeer is one emulated daemon adapter: a UDP endpoint wrapped in a
// segment scope, bound on the test port and joined to BeaconGroup.
type scopedPeer struct {
	ep   *UDPEndpoint
	sc   *ScopedEndpoint
	sink *recvSink
}

func newScopedPeer(t *testing.T, rt *Runtime, ip IP, scope IP, port uint16) *scopedPeer {
	t.Helper()
	ep, err := NewUDPEndpoint(rt, ip)
	if err != nil {
		t.Fatalf("NewUDPEndpoint(%v): %v", ip, err)
	}
	t.Cleanup(ep.Close)
	sc := NewScopedEndpoint(ep, scope)
	sink := newRecvSink()
	sc.Bind(port, sink.handler)
	sc.JoinGroup(BeaconGroup, port)
	return &scopedPeer{ep: ep, sc: sc, sink: sink}
}

// TestScopedMulticastSegments checks the heart of the loopback fabric:
// two daemons on one host whose endpoints share a scope group see each
// other's beacons, while a third daemon on a different scope sees
// nothing — and a rescope (the emulated port-VLAN rewrite) moves its
// visibility without touching its address.
func TestScopedMulticastSegments(t *testing.T) {
	if !loopbackMulticastWorks(t) {
		t.Skip("loopback multicast unavailable in this environment")
	}
	rt := NewRuntime()
	rt.RunAsync()
	// Registered before the endpoints so their Close cleanups run first:
	// Runtime.Close waits for every readLoop, which exit only once their
	// sockets close.
	t.Cleanup(rt.Close)

	port := testPort()
	segA := MakeIP(239, 71, 1, 1)
	segB := MakeIP(239, 71, 1, 2)

	p1 := newScopedPeer(t, rt, MakeIP(127, 0, 0, 11), segA, port)
	p2 := newScopedPeer(t, rt, MakeIP(127, 0, 0, 12), segA, port)
	p3 := newScopedPeer(t, rt, MakeIP(127, 0, 0, 13), segB, port)

	// p1 beacons to the well-known group; the scope rewrites it to segA.
	beacon := func(p *scopedPeer) {
		if err := p.sc.Multicast(port, Addr{IP: BeaconGroup, Port: port}, []byte("beacon")); err != nil {
			t.Fatalf("Multicast: %v", err)
		}
	}
	beacon(p1)
	if got := p2.sink.waitCount(1, 2*time.Second); got < 1 {
		t.Fatalf("same-scope peer saw %d beacons, want >= 1", got)
	}
	beacon(p2)
	if got := p1.sink.waitCount(1, 2*time.Second); got < 1 {
		t.Fatalf("same-scope peer saw %d beacons, want >= 1", got)
	}
	if got := p3.sink.count(); got != 0 {
		t.Fatalf("cross-scope peer saw %d beacons, want 0: %v", got, p3.sink.got)
	}

	// Rescope p3 into segA — the emulated VLAN rewrite — and beacon again.
	p3.sc.Rescope(segA)
	beacon(p1)
	if got := p3.sink.waitCount(1, 2*time.Second); got < 1 {
		t.Fatalf("rescoped peer saw %d beacons, want >= 1", got)
	}

	// Leave: dropping p2's membership stops delivery to it.
	before := p2.sink.count()
	p2.ep.LeaveGroup(segA, port)
	beacon(p1)
	if got := p3.sink.waitCount(before+1, 2*time.Second); got <= before {
		t.Fatalf("still-joined peer stopped seeing beacons (%d)", got)
	}
	time.Sleep(100 * time.Millisecond)
	if got := p2.sink.count(); got != before {
		t.Fatalf("left peer saw %d beacons, want %d", got, before)
	}
}

// TestScopedFaultModes checks the socket-level fault injection the
// loopback fabric uses in place of pulling cables.
func TestScopedFaultModes(t *testing.T) {
	if !loopbackMulticastWorks(t) {
		t.Skip("loopback multicast unavailable in this environment")
	}
	rt := NewRuntime()
	rt.RunAsync()
	t.Cleanup(rt.Close)

	port := testPort() + 1
	seg := MakeIP(239, 71, 2, 1)
	p1 := newScopedPeer(t, rt, MakeIP(127, 0, 0, 21), seg, port)
	p2 := newScopedPeer(t, rt, MakeIP(127, 0, 0, 22), seg, port)

	send := func() {
		if err := p1.sc.Multicast(port, Addr{IP: BeaconGroup, Port: port}, []byte("b")); err != nil {
			t.Fatalf("Multicast: %v", err)
		}
	}
	send()
	if got := p2.sink.waitCount(1, 2*time.Second); got < 1 {
		t.Fatalf("healthy path saw %d, want >= 1", got)
	}

	// fail-send on the sender: beacons stop leaving.
	if err := p1.sc.SetFault(FaultSend, 0, 0); err != nil {
		t.Fatal(err)
	}
	if p1.sc.Loopback() {
		t.Fatal("faulted adapter still passes Loopback self-test")
	}
	before := p2.sink.count()
	send()
	time.Sleep(100 * time.Millisecond)
	if got := p2.sink.count(); got != before {
		t.Fatalf("fail-send leaked a packet (%d -> %d)", before, got)
	}

	// Recover, then fail-recv on the receiver: packets arrive at the
	// socket but the wrapper swallows them.
	if err := p1.sc.SetFault(FaultHealthy, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := p2.sc.SetFault(FaultRecv, 0, 0); err != nil {
		t.Fatal(err)
	}
	send()
	time.Sleep(100 * time.Millisecond)
	if got := p2.sink.count(); got != before {
		t.Fatalf("fail-recv leaked a packet (%d -> %d)", before, got)
	}

	// fail-stop reports the adapter down to the Liveness probe.
	if err := p2.sc.SetFault(FaultStop, 0, 0); err != nil {
		t.Fatal(err)
	}
	if p2.sc.Up() {
		t.Fatal("fail-stop adapter reports Up")
	}
	if err := p2.sc.SetFault(FaultHealthy, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !p2.sc.Up() {
		t.Fatal("recovered adapter reports down")
	}
	send()
	if got := p2.sink.waitCount(before+1, 2*time.Second); got <= before {
		t.Fatalf("recovered path saw no beacon (%d)", got)
	}

	if err := p1.sc.SetFault("no-such-mode", 0, 0); err == nil {
		t.Fatal("SetFault accepted an unknown mode")
	}
	if err := p1.sc.SetFault(FaultHealthy, 1.5, 0); err == nil {
		t.Fatal("SetFault accepted loss rate > 1")
	}
}

// TestScopedSegmentTable checks the unicast half of segment emulation:
// with a fabric segment table installed, unicast to or from an adapter
// registered under a different scope dies at the wrapper (as it would at
// a real bridge), unregistered peers (switch agents, tooling) pass, and
// updating the table after a rescope restores connectivity.
func TestScopedSegmentTable(t *testing.T) {
	rt := NewRuntime()
	rt.RunAsync()
	t.Cleanup(rt.Close)

	port := testPort() + 2
	segA := MakeIP(239, 71, 3, 1)
	segB := MakeIP(239, 71, 3, 2)
	ipA := MakeIP(127, 0, 0, 31)
	ipB := MakeIP(127, 0, 0, 32)
	ipX := MakeIP(127, 0, 0, 33) // unregistered (switch agent analog)

	pA := newScopedPeer(t, rt, ipA, segA, port)
	pB := newScopedPeer(t, rt, ipB, segA, port)
	pX := newScopedPeer(t, rt, ipX, segA, port)

	sameSeg := map[IP]IP{ipA: segA, ipB: segA}
	pA.sc.SetSegments(sameSeg)
	pB.sc.SetSegments(sameSeg)

	send := func(from *scopedPeer, to IP) {
		if err := from.sc.Unicast(port, Addr{IP: to, Port: port}, []byte("u")); err != nil {
			t.Fatalf("Unicast: %v", err)
		}
	}
	send(pA, ipB)
	if got := pB.sink.waitCount(1, 2*time.Second); got < 1 {
		t.Fatalf("same-segment unicast saw %d, want >= 1", got)
	}

	// Move B to segB in the table only: A's sends to B drop at A (send
	// side), and B's sends to A drop at A too (receive side) — even
	// though B's own stale table still allows the send.
	split := map[IP]IP{ipA: segA, ipB: segB}
	pA.sc.SetSegments(split)
	before := pB.sink.count()
	send(pA, ipB)
	time.Sleep(100 * time.Millisecond)
	if got := pB.sink.count(); got != before {
		t.Fatalf("cross-segment unicast leaked at sender (%d -> %d)", before, got)
	}
	beforeA := pA.sink.count()
	send(pB, ipA)
	time.Sleep(100 * time.Millisecond)
	if got := pA.sink.count(); got != beforeA {
		t.Fatalf("cross-segment unicast leaked at receiver (%d -> %d)", beforeA, got)
	}

	// Unregistered peers always pass, both directions.
	send(pA, ipX)
	if got := pX.sink.waitCount(1, 2*time.Second); got < 1 {
		t.Fatalf("unicast to unregistered peer saw %d, want >= 1", got)
	}
	send(pX, ipA)
	if got := pA.sink.waitCount(beforeA+1, 2*time.Second); got <= beforeA {
		t.Fatalf("unicast from unregistered peer dropped")
	}

	// Rescope B to segB and push the matching table: connectivity within
	// the new segment layout is restored for a peer that moved with it.
	pB.sc.Rescope(segB)
	pB.sc.SetSegments(split)
	pA.sc.Rescope(segB)
	moved := map[IP]IP{ipA: segB, ipB: segB}
	pA.sc.SetSegments(moved)
	pB.sc.SetSegments(moved)
	send(pA, ipB)
	if got := pB.sink.waitCount(before+1, 2*time.Second); got <= before {
		t.Fatalf("post-rescope unicast saw %d, want > %d", got, before)
	}
}
