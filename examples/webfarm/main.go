// Webfarm: the Océano scenario that motivated GulfStream.
//
// A hosting farm serves two customers (domains) on shared hardware. When
// customer "acme" takes a load spike, GulfStream Central reallocates a
// server from "globex" to "acme" in minutes by rewriting switch-port
// VLANs over SNMP — with no false failure alarms, because Central expects
// the move and suppresses the resulting departure/join notifications
// (paper §3.1). The configuration database is updated so topology
// verification stays clean throughout.
//
// Run with:
//
//	go run ./examples/webfarm
package main

import (
	"fmt"
	"log"
	"time"

	gulfstream "repro"
)

func main() {
	f, err := gulfstream.NewFarm(gulfstream.Spec{
		Seed:       7,
		AdminNodes: 2,
		Domains: []gulfstream.DomainSpec{
			{Name: "acme", FrontEnds: 2, BackEnds: 2},
			{Name: "globex", FrontEnds: 2, BackEnds: 4},
		},
		StartSkew:    2 * time.Second,
		RecordEvents: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	f.Bus.Subscribe(func(e gulfstream.Event) {
		switch e.Kind {
		case gulfstream.NodeMoved, gulfstream.AdapterFailed, gulfstream.VerifyMismatch, gulfstream.AdapterDisabled:
			fmt.Printf("  event %v\n", e)
		}
	})

	fmt.Println("== farm boots: 2 customers, shared substrate ==")
	f.Start()
	if _, ok := f.RunUntilStable(2 * time.Minute); !ok {
		log.Fatal("farm never stabilized")
	}
	central := f.ActiveCentral()
	printAllocation(f)

	// ACME load spike: pull two back-ends out of globex.
	movers := []string{"globex-be-00", "globex-be-01"}
	fmt.Printf("\n== t=%v: acme load spike — reallocating %v ==\n", f.Sched.Now(), movers)
	pending := len(movers)
	for _, node := range movers {
		node := node
		if err := f.MoveNodeToDomain(node, "acme", func(err error) {
			if err != nil {
				log.Fatalf("move %s: %v", node, err)
			}
			pending--
			fmt.Printf("  SNMP reconfiguration for %s complete at t=%v\n", node, f.Sched.Now())
		}); err != nil {
			log.Fatal(err)
		}
	}
	// Let the moved adapters orphan out of their old AMGs and join the
	// new segment's groups; Central correlates the leave/join pairs.
	f.RunFor(90 * time.Second)
	if pending != 0 {
		log.Fatal("SNMP reconfigurations did not complete")
	}

	fmt.Println("\n== after reallocation ==")
	printAllocation(f)

	// The hard part: no *unsuppressed* failures for the moved adapters,
	// and verification against the (updated) database is clean.
	unsuppressed := 0
	suppressed := 0
	moves := 0
	for _, e := range f.Bus.Log() {
		switch e.Kind {
		case gulfstream.AdapterFailed:
			if e.Suppressed {
				suppressed++
			} else {
				unsuppressed++
			}
		case gulfstream.NodeMoved:
			moves++
		}
	}
	fmt.Printf("\nmove inference: %d NodeMoved events; %d failure notifications suppressed, %d leaked\n",
		moves, suppressed, unsuppressed)
	if unsuppressed > 0 {
		log.Fatal("a planned move leaked failure notifications")
	}
	if findings := central.Verify(); len(findings) != 0 {
		log.Fatalf("verification found: %v", findings)
	}
	fmt.Println("verification against the configuration database: clean")
	fmt.Println("\nservers reallocated across security domains with zero false alarms.")
}

func printAllocation(f *gulfstream.Farm) {
	byDomain := map[string][]string{}
	for name, info := range f.Nodes {
		if info.Domain != "" {
			byDomain[info.Domain] = append(byDomain[info.Domain], name)
		}
	}
	for _, dom := range []string{"acme", "globex"} {
		fmt.Printf("  %-7s %d servers\n", dom+":", len(byDomain[dom]))
	}
}
