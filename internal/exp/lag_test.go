package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/serve"
	"repro/internal/span"
)

// TestLagQuickSanity runs the PR-gate E18 variant end to end: every
// trial must stitch a complete, closed, gap-free primary span and the
// failure cells' span arithmetic must reconcile with the serving
// plane's measured error-seconds.
func TestLagQuickSanity(t *testing.T) {
	_, bad, err := Lag(QuickLag())
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d sanity failures", bad)
	}
}

// TestLagDeterministic asserts the acceptance property directly: the
// same options serialize to byte-identical points on every run.
func TestLagDeterministic(t *testing.T) {
	o := QuickLag()
	o.Schedules = []string{"failure"}
	run := func() []byte {
		points, err := LagSweep(o)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(points)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatalf("same-seed sweeps differ:\n%s\n---\n%s", a, b)
	}
}

// TestLagPromSurface runs one seeded E17-style cell and checks the
// Prometheus rendering of the notification-lag and per-stage span
// histograms: the series exist and their quantiles are monotone.
func TestLagPromSurface(t *testing.T) {
	spec := serveSpec(171, 2)
	spec.Trace = true
	f, err := farm.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	coll := span.NewCollector(nil)
	coll.Attach("farm", f.Trace)
	f.Start()
	if _, ok := f.RunUntilStable(2 * time.Minute); !ok {
		t.Fatal("farm never stabilized")
	}
	plane := f.AttachServe(serve.Config{Seed: 171, SessionsPerSec: 200},
		serve.NewDelayedPipe(f.Clock(), 500*time.Millisecond))
	plane.Start()
	f.RunFor(5 * time.Second)
	sched, err := serveChurn("failure")
	if err != nil {
		t.Fatal(err)
	}
	sched.Run(f)
	f.RunFor(2 * time.Second)
	plane.Stop()
	span.Observe(f.Metrics, span.Stitch(coll.Records(), f))

	var sb strings.Builder
	f.Metrics.WriteProm(&sb)
	text := sb.String()
	for _, name := range []string{
		"serve_notify_lag", "span_stage_suspicion", "span_stage_2pc_prepare",
		"span_stage_notify", "span_stage_reroute", "span_total",
	} {
		if !strings.Contains(text, "gulfstream_"+name+"_seconds{quantile=\"0.5\"}") {
			t.Fatalf("prometheus text missing %s quantile series:\n%s", name, text)
		}
		h := f.Metrics.Histogram(name)
		if h.N == 0 {
			t.Fatalf("%s has no observations", name)
		}
		if h.P50 > h.P95 || h.P95 > h.Max {
			t.Fatalf("%s quantiles not monotone: p50=%v p95=%v max=%v", name, h.P50, h.P95, h.Max)
		}
	}
}
