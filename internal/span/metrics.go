package span

import (
	"strings"

	"repro/internal/metrics"
)

// Observe feeds the stitched spans into the registry's latency
// histograms: one `span_stage_<name>` series per attributed stage and
// `span_total` for the end-to-end latency of complete spans. This is
// how the causal timeline reaches the Prometheus surface — quantiles
// over many incidents rather than one waterfall.
func Observe(reg *metrics.Registry, spans []*Span) {
	if reg == nil {
		return
	}
	for _, sp := range spans {
		for _, sd := range sp.StageDurations() {
			// Stage names use dashes ("2pc-prepare"); metric names can't.
			name := strings.ReplaceAll(sd.Stage.String(), "-", "_")
			reg.ObserveDuration("span_stage_"+name, sd.D)
		}
		if sp.Complete() && len(sp.Milestones) > 1 {
			reg.ObserveDuration("span_total", sp.Total())
		}
	}
}
